// Package shard scales the serving layer past one volume's disk set: it
// range-partitions the uint64 keyspace across S independent volumes — each
// with its own Config, directory, and disks — behind the same index.Index
// contract the single-volume implementations serve. This is the Parallel
// Disk Model's striping lifted one level: D disks inside a volume, S
// volumes inside a system.
//
// The partition is given as S-1 split keys; shard i owns the half-open
// interval [splits[i-1], splits[i]) (shard 0 from zero, the last shard to
// the top of the keyspace). Batched lookups exploit the sort the
// single-volume GetBatch already performs: the ordered batch is cut at the
// partition boundaries — a merge cut, one binary search per shard touched,
// never a per-key routing pass — and the per-shard sub-batches fan out
// concurrently, each shard answering on its own disks. Cross-shard scans
// concatenate per-shard scanners in shard order, which is key order,
// behind one stream.Source. Sessions compose per-shard sessions, each with
// its reserved budget on its own shard's pool. Writes (shard.Store) route
// to the owning shard's buffer-tree front, and background drains proceed
// per shard.
//
// Aggregated Stats sum the per-shard counters and concatenate the
// per-disk breakdowns in shard order, so the module's counter invariants —
// sim == file byte-identical snapshots, async == sync counted I/Os —
// extend verbatim to the sharded surface: the aggregate is byte-identical
// across backends exactly when every shard's snapshot is. Every error a
// shard surfaces is wrapped with its shard index (errors.Is/As still see
// the cause), so a starved pool reports which shard hit its budget; a
// batch fan-out that loses some shards but not all degrades gracefully,
// returning the survivors' answers alongside a *PartialError instead of
// failing the whole batch (see PartialError for the contract).
package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"em/internal/pdm"
)

// ErrClosed reports an operation on a closed sharded session.
var ErrClosed = errors.New("shard: closed")

// wrapShard tags an error with the shard it came from, preserving
// errors.Is/As through %w — a starved pool's pdm.ErrNoFrames names the
// shard that exhausted its budget instead of surfacing bare.
func wrapShard(i int, err error) error {
	return fmt.Errorf("shard %d: %w", i, err)
}

// ownerOf returns the shard owning key: the number of splits at or below
// it.
func ownerOf(splits []uint64, key uint64) int {
	return sort.Search(len(splits), func(i int) bool { return key < splits[i] })
}

// validateSplits checks the partition shape: S shards need exactly S-1
// strictly increasing split keys.
func validateSplits(shards int, splits []uint64) error {
	if shards < 1 {
		return errors.New("shard: need at least one shard")
	}
	if len(splits) != shards-1 {
		return fmt.Errorf("shard: %d shards need %d splits, got %d", shards, shards-1, len(splits))
	}
	for i := 1; i < len(splits); i++ {
		if splits[i] <= splits[i-1] {
			return fmt.Errorf("shard: splits must be strictly increasing (split %d: %d after %d)",
				i, splits[i], splits[i-1])
		}
	}
	return nil
}

// batchSeg is one shard's contiguous run [lo, hi) of the sorted batch view.
type batchSeg struct {
	shard  int
	lo, hi int
}

// cutBatch sorts an order index over keys (the merge view the single-volume
// GetBatch builds anyway) and cuts it at the partition boundaries: each
// shard touched yields one contiguous segment, found with one binary search
// per boundary rather than a per-key routing pass. Segments come back in
// ascending shard order, so no shard appears twice.
func cutBatch(splits []uint64, keys []uint64) (order []int, segs []batchSeg) {
	order = make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })
	for k := 0; k < len(order); {
		sh := ownerOf(splits, keys[order[k]])
		j := len(order)
		if sh < len(splits) {
			// The merge cut: the first sorted position at or past the
			// shard's upper boundary.
			j = k + sort.Search(len(order)-k, func(m int) bool {
				return keys[order[k+m]] >= splits[sh]
			})
		}
		segs = append(segs, batchSeg{shard: sh, lo: k, hi: j})
		k = j
	}
	return order, segs
}

// PartialError reports a fanned-out GetBatch that lost some shards while
// the rest answered: graceful degradation instead of failing the whole
// batch for one faulted shard. It is returned alongside the surviving
// results — vals and found stay valid for every key whose Served entry is
// true — so a caller that can tolerate holes keeps the answers it got,
// and one that cannot treats the error like any other failure.
//
// Unwrap exposes every per-shard cause (each already wrapped with its
// shard index), so errors.Is and errors.As see through to the underlying
// classification — a starved shard's pdm.ErrNoFrames, a shed shard's
// overload, a dead disk's pdm.ErrFaulted.
type PartialError struct {
	// Failed and Causes are the shards that failed, ascending, with their
	// wrapped errors aligned.
	Failed []int
	Causes []error
	// Answered are the shards whose results are intact, ascending.
	Answered []int
	// Served aligns with the caller's keys: true exactly when the key's
	// shard answered, so its vals/found entries are trustworthy.
	Served []bool
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("shard: partial batch: %d of %d shards failed (first: %v)",
		len(e.Failed), len(e.Failed)+len(e.Answered), e.Causes[0])
}

// Unwrap exposes the per-shard causes.
func (e *PartialError) Unwrap() []error { return e.Causes }

// fanOutBatch answers an aligned batch through per-shard GetBatch calls:
// cut the sorted view, fan the sub-batches out concurrently — one
// goroutine per shard touched, each shard on its own volume — and write
// every shard's answers back into the caller's alignment. When some but
// not all shards fail, the surviving results are returned with a
// *PartialError describing the holes; only a batch with no surviving
// shard fails outright.
func fanOutBatch(splits []uint64, keys []uint64,
	get func(shard int, sub []uint64) ([]uint64, []bool, error)) ([]uint64, []bool, error) {
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, found, nil
	}
	order, segs := cutBatch(splits, keys)
	errs := make([]error, len(segs))
	var wg sync.WaitGroup
	for si, sg := range segs {
		wg.Add(1)
		go func(si int, sg batchSeg) {
			defer wg.Done()
			sub := make([]uint64, sg.hi-sg.lo)
			for m := range sub {
				sub[m] = keys[order[sg.lo+m]]
			}
			v, f, err := get(sg.shard, sub)
			if err != nil {
				errs[si] = wrapShard(sg.shard, err)
				return
			}
			for m := range sub {
				i := order[sg.lo+m]
				vals[i], found[i] = v[m], f[m]
			}
		}(si, sg)
	}
	wg.Wait()
	perr := &PartialError{}
	for si, sg := range segs {
		if errs[si] != nil {
			perr.Failed = append(perr.Failed, sg.shard)
			perr.Causes = append(perr.Causes, errs[si])
		} else {
			perr.Answered = append(perr.Answered, sg.shard)
		}
	}
	if len(perr.Failed) == 0 {
		return vals, found, nil
	}
	if len(perr.Answered) == 0 {
		// Nothing survived: no degradation to offer, fail plainly.
		return nil, nil, perr.Causes[0]
	}
	perr.Served = make([]bool, len(keys))
	for si, sg := range segs {
		if errs[si] != nil {
			continue
		}
		for m := sg.lo; m < sg.hi; m++ {
			perr.Served[order[m]] = true
		}
	}
	return vals, found, perr
}

// addStats accumulates one shard's snapshot into the aggregate: the scalar
// counters sum, and the per-disk breakdowns concatenate in shard order —
// the system's disks are the shards' disks laid end to end — so the
// aggregate stays byte-identical across storage backends exactly when
// every shard's snapshot is.
func addStats(agg *pdm.Stats, s pdm.Stats) {
	agg.Reads += s.Reads
	agg.Writes += s.Writes
	agg.Steps += s.Steps
	agg.Retries += s.Retries
	agg.PerDiskReads = append(agg.PerDiskReads, s.PerDiskReads...)
	agg.PerDiskWrites = append(agg.PerDiskWrites, s.PerDiskWrites...)
}
