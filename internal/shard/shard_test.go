package shard

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"em/internal/btree"
	"em/internal/buffertree"
	"em/internal/index"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/store"
	"em/internal/stream"
)

func testConfig() pdm.Config {
	return pdm.Config{BlockBytes: 512, MemBlocks: 96, Disks: 2}
}

func storeConfig() store.Config {
	return store.Config{
		FrontOps:    100,
		CacheFrames: 4,
		Width:       2,
		Front:       buffertree.Config{Fanout: 4, BufferRecords: 32},
	}
}

// shardVolumes opens s independent volumes of identical shape — file-backed
// in their own directories when file is set — with one pool each.
func shardVolumes(t *testing.T, s int, file bool) ([]*pdm.Volume, []*pdm.Pool) {
	t.Helper()
	vols := make([]*pdm.Volume, s)
	pools := make([]*pdm.Pool, s)
	for i := range vols {
		cfg := testConfig()
		if file {
			cfg.Dir = t.TempDir()
		}
		vols[i] = pdm.MustVolume(cfg)
		t.Cleanup(func() { vols[i].Close() })
		pools[i] = pdm.PoolFor(vols[i])
	}
	return vols, pools
}

// forEachBackend mirrors the pdm/btree/store test harnesses: every check
// runs against the memory simulation and real per-disk files.
func forEachBackend(t *testing.T, fn func(t *testing.T, file bool)) {
	t.Run("mem", func(t *testing.T) { fn(t, false) })
	t.Run("file", func(t *testing.T) { fn(t, true) })
}

// randomSplits draws s-1 strictly increasing boundaries inside (0, maxKey),
// so every shard interval is non-empty over the test keyspace.
func randomSplits(rng *rand.Rand, s int, maxKey uint64) []uint64 {
	picked := map[uint64]bool{}
	for len(picked) < s-1 {
		picked[uint64(rng.Int63n(int64(maxKey-2)))+2] = true
	}
	splits := make([]uint64, 0, s-1)
	for k := range picked {
		splits = append(splits, k)
	}
	sort.Slice(splits, func(i, j int) bool { return splits[i] < splits[j] })
	return splits
}

// buildShardedTree bulk-loads each shard's slice of the sorted records on
// its own volume and assembles the facade.
func buildShardedTree(t *testing.T, vols []*pdm.Volume, pools []*pdm.Pool, splits []uint64, sorted []record.Record) *Tree {
	t.Helper()
	shards := make([]*btree.Tree, len(vols))
	for i := range vols {
		var part []record.Record
		for _, r := range sorted {
			if ownerOf(splits, r.Key) == i {
				part = append(part, r)
			}
		}
		sf, err := stream.FromSlice(vols[i], pools[i], record.RecordCodec{}, part)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := btree.BulkLoad(vols[i], pools[i], 8, sf, nil)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = tr
	}
	st, err := NewTree(shards, &TreeOptions{Splits: splits})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func drainScanner(t *testing.T, sc index.Scanner) []record.Record {
	t.Helper()
	defer sc.Close()
	var out []record.Record
	for {
		r, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// TestCutBatch checks the merge cut directly: the segments partition the
// sorted view exactly, every key lands in its owner's segment, and shard
// ids ascend strictly (so the fan-out touches each shard once).
func TestCutBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		s := rng.Intn(5) + 1
		splits := []uint64{}
		if s > 1 {
			splits = randomSplits(rng, s, 1000)
		}
		keys := make([]uint64, rng.Intn(64))
		for i := range keys {
			keys[i] = uint64(rng.Intn(1100))
		}
		order, segs := cutBatch(splits, keys)
		covered := 0
		lastShard := -1
		for _, sg := range segs {
			if sg.shard <= lastShard {
				t.Fatalf("shard ids not strictly ascending: %d after %d", sg.shard, lastShard)
			}
			lastShard = sg.shard
			if sg.lo != covered {
				t.Fatalf("segment starts at %d, expected %d", sg.lo, covered)
			}
			covered = sg.hi
			for m := sg.lo; m < sg.hi; m++ {
				if own := ownerOf(splits, keys[order[m]]); own != sg.shard {
					t.Fatalf("key %d in shard %d segment, owner %d", keys[order[m]], sg.shard, own)
				}
			}
		}
		if covered != len(keys) {
			t.Fatalf("segments cover %d of %d positions", covered, len(keys))
		}
	}
}

func TestValidateSplits(t *testing.T) {
	if err := validateSplits(0, nil); err == nil {
		t.Fatal("zero shards accepted")
	}
	if err := validateSplits(3, []uint64{5}); err == nil {
		t.Fatal("wrong split count accepted")
	}
	if err := validateSplits(3, []uint64{9, 5}); err == nil {
		t.Fatal("descending splits accepted")
	}
	if err := validateSplits(3, []uint64{5, 5}); err == nil {
		t.Fatal("equal splits accepted")
	}
	if err := validateSplits(3, []uint64{5, 9}); err != nil {
		t.Fatalf("valid splits rejected: %v", err)
	}
}

// TestShardedTreeQuickMatchesReference quick-checks the sharded read path
// against a single-volume tree holding the identical records, over random
// partition counts, on both backends: GetBatch answers and Scan streams
// are record-identical, and the sharded layout's aggregated reads stay
// within S times the reference's (each of the S trees is at most as tall
// as the reference, so no descent pays more than the single-volume one).
func TestShardedTreeQuickMatchesReference(t *testing.T) {
	forEachBackend(t, func(t *testing.T, file bool) {
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 4; trial++ {
			s := rng.Intn(5) + 1
			const maxKey = 4096
			n := 600 + rng.Intn(600)
			splits := []uint64{}
			if s > 1 {
				splits = randomSplits(rng, s, maxKey)
			}
			recs := make([]record.Record, 0, n)
			seen := map[uint64]bool{}
			for len(recs) < n {
				k := uint64(rng.Intn(maxKey)) + 1
				if !seen[k] {
					seen[k] = true
					recs = append(recs, record.Record{Key: k, Val: k * 3})
				}
			}
			sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })

			vols, pools := shardVolumes(t, s, file)
			sharded := buildShardedTree(t, vols, pools, splits, recs)
			refVols, refPools := shardVolumes(t, 1, file)
			reference := buildShardedTree(t, refVols, refPools, nil, recs)

			// An unsorted batch with ~1/4 misses, answered by both layouts
			// from a reset counter baseline.
			keys := make([]uint64, 500)
			for i := range keys {
				keys[i] = uint64(rng.Intn(maxKey+maxKey/4)) + 1
			}
			for _, v := range vols {
				v.Stats().Reset()
			}
			refVols[0].Stats().Reset()
			vals, found, err := sharded.GetBatch(keys)
			if err != nil {
				t.Fatal(err)
			}
			refVals, refFound, err := reference.GetBatch(keys)
			if err != nil {
				t.Fatal(err)
			}
			for i := range keys {
				if vals[i] != refVals[i] || found[i] != refFound[i] {
					t.Fatalf("GetBatch disagrees on key %d: (%d,%v) vs (%d,%v)",
						keys[i], vals[i], found[i], refVals[i], refFound[i])
				}
			}
			if got, ref := sharded.Stats().Reads, reference.Stats().Reads; got > uint64(s)*ref {
				t.Fatalf("sharded GetBatch reads %d exceed %d x reference %d", got, s, ref)
			}

			// Point lookups through a composed session match too.
			sess, err := sharded.NewSession(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			sv, sf, err := sess.GetBatch(keys)
			if err != nil {
				t.Fatal(err)
			}
			for i := range keys {
				if sv[i] != refVals[i] || sf[i] != refFound[i] {
					t.Fatalf("session GetBatch disagrees on key %d", keys[i])
				}
			}
			if _, ok, err := sess.Get(recs[0].Key); err != nil || !ok {
				t.Fatalf("session Get(%d): ok=%v err=%v", recs[0].Key, ok, err)
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}

			// Random ranges — including cross-shard and full-keyspace ones —
			// stream the identical records in order.
			for r := 0; r < 4; r++ {
				lo := uint64(rng.Intn(maxKey)) + 1
				hi := lo + uint64(rng.Intn(maxKey))
				if r == 0 {
					lo, hi = 0, ^uint64(0)
				}
				shardedScan, err := sharded.Scan(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				got := drainScanner(t, shardedScan)
				refScan, err := reference.Scan(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				want := drainScanner(t, refScan)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("scan [%d,%d] disagrees: %d vs %d records", lo, hi, len(got), len(want))
				}
			}
		}
	})
}

// TestShardedStoreQuickMatchesReference drives the identical random
// interleaving of inserts, deletes, and forced drains through a sharded
// store and a single-volume store, on both backends, checking point reads,
// batches, sessions, and the final scans agree record for record.
func TestShardedStoreQuickMatchesReference(t *testing.T) {
	forEachBackend(t, func(t *testing.T, file bool) {
		rng := rand.New(rand.NewSource(43))
		for trial := 0; trial < 3; trial++ {
			s := rng.Intn(5) + 1
			const maxKey = 2048
			splits := []uint64{}
			if s > 1 {
				splits = randomSplits(rng, s, maxKey)
			}
			vols, pools := shardVolumes(t, s, file)
			sharded, err := OpenStore(vols, pools, &StoreOptions{Splits: splits, Store: storeConfig()})
			if err != nil {
				t.Fatal(err)
			}
			defer sharded.Close()
			refVols, refPools := shardVolumes(t, 1, file)
			reference, err := store.Open(refVols[0], refPools[0], storeConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer reference.Close()

			for op := 0; op < 900; op++ {
				k := uint64(rng.Intn(maxKey)) + 1
				if rng.Intn(4) == 0 {
					if err := sharded.Delete(k); err != nil {
						t.Fatal(err)
					}
					if err := reference.Delete(k); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := sharded.Insert(k, uint64(op)); err != nil {
						t.Fatal(err)
					}
					if err := reference.Insert(k, uint64(op)); err != nil {
						t.Fatal(err)
					}
				}
				if op%300 == 299 {
					if err := sharded.Drain(); err != nil {
						t.Fatal(err)
					}
					if err := reference.Drain(); err != nil {
						t.Fatal(err)
					}
				}
				if op%37 == 0 {
					v, ok, err := sharded.Get(k)
					if err != nil {
						t.Fatal(err)
					}
					rv, rok, rerr := reference.Get(k)
					if rerr != nil {
						t.Fatal(rerr)
					}
					if v != rv || ok != rok {
						t.Fatalf("Get(%d) disagrees: (%d,%v) vs (%d,%v)", k, v, ok, rv, rok)
					}
				}
			}

			keys := make([]uint64, 300)
			for i := range keys {
				keys[i] = uint64(rng.Intn(maxKey+64)) + 1
			}
			vals, found, err := sharded.GetBatch(keys)
			if err != nil {
				t.Fatal(err)
			}
			refVals, refFound, err := reference.GetBatch(keys)
			if err != nil {
				t.Fatal(err)
			}
			for i := range keys {
				if vals[i] != refVals[i] || found[i] != refFound[i] {
					t.Fatalf("GetBatch disagrees on key %d", keys[i])
				}
			}

			sess, err := sharded.NewSession(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			sv, sf, err := sess.GetBatch(keys)
			if err != nil {
				t.Fatal(err)
			}
			for i := range keys {
				if sv[i] != refVals[i] || sf[i] != refFound[i] {
					t.Fatalf("session GetBatch disagrees on key %d", keys[i])
				}
			}
			if err := sess.Close(); err != nil {
				t.Fatal(err)
			}

			shardedScan, err := sharded.Scan(0, ^uint64(0))
			if err != nil {
				t.Fatal(err)
			}
			got := drainScanner(t, shardedScan)
			refScan, err := reference.Scan(0, ^uint64(0))
			if err != nil {
				t.Fatal(err)
			}
			want := drainScanner(t, refScan)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("full scan disagrees: %d vs %d records", len(got), len(want))
			}
		}
	})
}

// TestShardedStoreStatsBackendIdentity pins the aggregated-counter
// invariant the facade promises: a deterministic workload — writes, an
// explicit drain on every shard, batched reads, a full scan — produces a
// byte-identical aggregated Stats snapshot on the memory simulation and on
// real files.
func TestShardedStoreStatsBackendIdentity(t *testing.T) {
	run := func(t *testing.T, file bool) pdm.Stats {
		const s = 3
		splits := []uint64{300, 700}
		vols, pools := shardVolumes(t, s, file)
		st, err := OpenStore(vols, pools, &StoreOptions{Splits: splits, Store: storeConfig()})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(44))
		for op := 0; op < 240; op++ {
			k := uint64(rng.Intn(1000)) + 1
			if rng.Intn(5) == 0 {
				if err := st.Delete(k); err != nil {
					t.Fatal(err)
				}
			} else if err := st.Insert(k, uint64(op)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Drain(); err != nil {
			t.Fatal(err)
		}
		keys := make([]uint64, 200)
		for i := range keys {
			keys[i] = uint64(rng.Intn(1100)) + 1
		}
		if _, _, err := st.GetBatch(keys); err != nil {
			t.Fatal(err)
		}
		sc, err := st.Scan(0, ^uint64(0))
		if err != nil {
			t.Fatal(err)
		}
		drainScanner(t, sc)
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return st.Stats()
	}
	mem := run(t, false)
	fil := run(t, true)
	if !reflect.DeepEqual(mem, fil) {
		t.Fatalf("aggregated stats differ between backends:\nmem:  %+v\nfile: %+v", mem, fil)
	}
	if len(mem.PerDiskReads) != 3*testConfig().Disks {
		t.Fatalf("aggregate has %d per-disk read counters, want %d",
			len(mem.PerDiskReads), 3*testConfig().Disks)
	}
}

// TestShardedStoreConcurrentDrains hammers every shard's write front from
// concurrent writers — fronts seal and drain in the background, several
// shards at once — while readers run point, batch, and scan queries. Run
// under -race by make ci, this is the drain-concurrency check for the
// sharded facade; the final drain-and-scan verifies nothing was lost.
func TestShardedStoreConcurrentDrains(t *testing.T) {
	const s = 4
	splits := []uint64{1 << 12, 2 << 12, 3 << 12}
	vols, pools := shardVolumes(t, s, false)
	st, err := OpenStore(vols, pools, &StoreOptions{Splits: splits, Store: storeConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const writers = 4
	const perWriter = 400
	var wg sync.WaitGroup
	errs := make([]error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer sprays all shards, so drains overlap across them.
			for i := 0; i < perWriter; i++ {
				k := (uint64(i*writers+w) * 10) % (4 << 12)
				if err := st.Insert(k+1, uint64(w)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		keys := make([]uint64, 64)
		for i := 0; i < 40; i++ {
			for j := range keys {
				keys[j] = uint64(i*64+j)%(4<<12) + 1
			}
			if _, _, err := st.GetBatch(keys); err != nil {
				errs[writers] = err
				return
			}
			sc, err := st.Scan(keys[0], keys[0]+512)
			if err != nil {
				errs[writers] = err
				return
			}
			for {
				if _, ok, err := sc.Next(); err != nil {
					errs[writers] = err
					sc.Close()
					return
				} else if !ok {
					break
				}
			}
			sc.Close()
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	sc, err := st.Scan(0, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(drainScanner(t, sc)), writers*perWriter; got != want {
		t.Fatalf("after concurrent writes: %d records, want %d", got, want)
	}
}

// TestShardSessionStarvedPool pins the error contract: when one shard's
// pool cannot fund its slice of a composed session, the failure carries
// that shard's index and still matches pdm.ErrNoFrames through errors.Is.
func TestShardSessionStarvedPool(t *testing.T) {
	vols, pools := shardVolumes(t, 2, false)
	recs := []record.Record{{Key: 1, Val: 1}, {Key: 600, Val: 2}}
	sharded := buildShardedTree(t, vols, pools, []uint64{512}, recs)

	// Rehome shard 1 onto a pool with no headroom beyond its cache, so the
	// session reserve (cacheFrames + 2 x width) cannot be funded there.
	tight := pdm.NewPool(testConfig().BlockBytes, 3)
	if err := sharded.Shard(1).Rehome(tight, 3); err != nil {
		t.Fatal(err)
	}
	_, err := sharded.NewSession(0, 0)
	if err == nil {
		t.Fatal("session on a starved shard pool succeeded")
	}
	if !errors.Is(err, pdm.ErrNoFrames) {
		t.Fatalf("error does not wrap pdm.ErrNoFrames: %v", err)
	}
	if !strings.Contains(err.Error(), "shard 1:") {
		t.Fatalf("error does not name the starved shard: %v", err)
	}
}

// TestShardedScannerClosed checks the stitched scanner's lifecycle edges:
// Next after Close reports stream.ErrClosed and Close is idempotent.
func TestShardedScannerClosed(t *testing.T) {
	vols, pools := shardVolumes(t, 2, false)
	recs := []record.Record{{Key: 1, Val: 1}, {Key: 600, Val: 2}}
	sharded := buildShardedTree(t, vols, pools, []uint64{512}, recs)
	sc, err := sharded.Scan(0, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(drainScanner(t, sc)); got != 2 {
		t.Fatalf("scan returned %d records, want 2", got)
	}
	if _, ok, err := sc.Next(); ok || !errors.Is(err, stream.ErrClosed) {
		t.Fatalf("Next after Close: ok=%v err=%v", ok, err)
	}
	sc.Close() // idempotent
}
