package shard

import (
	"fmt"
	"sync"

	"em/internal/index"
	"em/internal/pdm"
	"em/internal/store"
)

// Store is the updatable sharded index: one buffer-tree-fronted store per
// shard, each on its own volume with its own background drain, behind the
// same index.Index surface as the sharded Tree plus the write and drain
// controls. Writes route to the owning shard's front; the shards seal and
// drain independently, so a drain on one shard never stalls reads or
// writes on another. Reads are safe for concurrent use, as the per-shard
// stores are.
type Store struct {
	shards []*store.Store
	splits []uint64
}

// StoreOptions configures a sharded store.
type StoreOptions struct {
	// Splits are the len(vols)-1 strictly increasing partition boundaries,
	// with the same ownership rule as TreeOptions.Splits.
	Splits []uint64
	// Store configures each per-shard store (block geometry comes from the
	// shard's own volume; zero fields take store.Config's defaults).
	Store store.Config
}

// OpenStore opens one store per volume — vols[i] and pools[i] back shard
// i — and assembles the sharded facade. On failure the stores already
// opened are closed and the error carries the failing shard's index. The
// caller keeps ownership of the volumes and pools.
func OpenStore(vols []*pdm.Volume, pools []*pdm.Pool, opts *StoreOptions) (*Store, error) {
	var o StoreOptions
	if opts != nil {
		o = *opts
	}
	if len(vols) != len(pools) {
		return nil, fmt.Errorf("shard: %d volumes but %d pools", len(vols), len(pools))
	}
	if err := validateSplits(len(vols), o.Splits); err != nil {
		return nil, err
	}
	shards := make([]*store.Store, len(vols))
	for i := range vols {
		st, err := store.Open(vols[i], pools[i], o.Store)
		if err != nil {
			for j := 0; j < i; j++ {
				shards[j].Close()
			}
			return nil, wrapShard(i, err)
		}
		shards[i] = st
	}
	return &Store{shards: shards, splits: append([]uint64(nil), o.Splits...)}, nil
}

// Shards returns the number of shards.
func (s *Store) Shards() int { return len(s.shards) }

// Shard returns shard i's store, for per-shard inspection.
func (s *Store) Shard(i int) *store.Store { return s.shards[i] }

// Owner returns the index of the shard owning key.
func (s *Store) Owner(key uint64) int { return ownerOf(s.splits, key) }

// Insert routes an upsert to the owning shard's buffer-tree front.
func (s *Store) Insert(key, val uint64) error {
	sh := ownerOf(s.splits, key)
	if err := s.shards[sh].Insert(key, val); err != nil {
		return wrapShard(sh, err)
	}
	return nil
}

// Delete routes a delete to the owning shard's front.
func (s *Store) Delete(key uint64) error {
	sh := ownerOf(s.splits, key)
	if err := s.shards[sh].Delete(key); err != nil {
		return wrapShard(sh, err)
	}
	return nil
}

// Get routes a point lookup to the owning shard (front and sealed
// overlays first, then its current base tree).
func (s *Store) Get(key uint64) (uint64, bool, error) {
	sh := ownerOf(s.splits, key)
	v, ok, err := s.shards[sh].Get(key)
	if err != nil {
		return 0, false, wrapShard(sh, err)
	}
	return v, ok, nil
}

// GetBatch answers an aligned batch by cutting its sorted view at the
// partition boundaries and fanning the per-shard sub-batches out
// concurrently.
func (s *Store) GetBatch(keys []uint64) ([]uint64, []bool, error) {
	return fanOutBatch(s.splits, keys, func(sh int, sub []uint64) ([]uint64, []bool, error) {
		return s.shards[sh].GetBatch(sub)
	})
}

// Scan streams the records with keys in [lo, hi] in key order across
// shards. Every shard's snapshot scanner is opened here, before the first
// Next, so the cut each shard sees is taken at Scan time — lazy opening
// would let a late shard's snapshot include writes made after the scan
// began.
func (s *Store) Scan(lo, hi uint64) (index.Scanner, error) {
	first, last := ownerOf(s.splits, lo), ownerOf(s.splits, hi)
	segs := make([]scanSeg, 0, last-first+1)
	for i := first; i <= last; i++ {
		src, err := s.shards[i].Scan(lo, hi)
		if err != nil {
			for j := range segs {
				segs[j].src.Close()
			}
			return nil, wrapShard(i, err)
		}
		segs = append(segs, scanSeg{shard: i, src: src})
	}
	return &Scanner{segs: segs}, nil
}

// NewSession opens a composed read session: one snapshot session per
// shard, each pinning its shard's generation and reserving its budget on
// its shard's pool.
func (s *Store) NewSession(cacheFrames, width int) (index.Session, error) {
	return newSession(s.splits, len(s.shards), func(i int) (index.Session, error) {
		return s.shards[i].NewSession(cacheFrames, width)
	})
}

// StartDrain kicks a background drain on every shard whose front has
// work, without blocking; it reports whether any shard is draining
// afterwards.
func (s *Store) StartDrain() bool {
	any := false
	for _, sh := range s.shards {
		if sh.StartDrain() {
			any = true
		}
	}
	return any
}

// Draining reports whether any shard has a drain in flight.
func (s *Store) Draining() bool {
	for _, sh := range s.shards {
		if sh.Draining() {
			return true
		}
	}
	return false
}

// Drain forces every shard's buffered operations down into its base tree
// and waits; the shards drain concurrently, each on its own volume. The
// first failure is reported with its shard index.
func (s *Store) Drain() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *store.Store) {
			defer wg.Done()
			if err := sh.Drain(); err != nil {
				errs[i] = wrapShard(i, err)
			}
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Drains returns the total number of completed drains across shards.
func (s *Store) Drains() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.Drains()
	}
	return n
}

// FrontOps returns the total operations buffered in the shards' fronts
// (including sealed fronts still draining).
func (s *Store) FrontOps() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.FrontOps()
	}
	return n
}

// Stats aggregates the per-shard volume snapshots: counters summed,
// per-disk breakdowns concatenated in shard order.
func (s *Store) Stats() pdm.Stats {
	var agg pdm.Stats
	for _, sh := range s.shards {
		addStats(&agg, sh.Stats())
	}
	return agg
}

// Close drains and closes every shard, reporting the first failure with
// its shard index but closing the rest regardless.
func (s *Store) Close() error {
	var first error
	for i, sh := range s.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = wrapShard(i, err)
		}
	}
	return first
}
