package shard

import (
	"em/internal/btree"
	"em/internal/index"
	"em/internal/pdm"
)

// Tree is a read-only sharded index: S independent B+-trees, each on its
// own volume with its own disks, range-partitioned by the split keys. It
// serves the full index.Index surface; reads route to the owning shard and
// batches fan out concurrently, one goroutine per shard touched. Like the
// single-volume Tree, the top-level methods are for one goroutine at a
// time — concurrency comes from sessions.
type Tree struct {
	shards []*btree.Tree
	splits []uint64
}

var (
	_ index.Index   = (*Tree)(nil)
	_ index.Index   = (*Store)(nil)
	_ index.Session = (*Session)(nil)
	_ index.Scanner = (*Scanner)(nil)
)

// TreeOptions configures a sharded tree.
type TreeOptions struct {
	// Splits are the len(shards)-1 strictly increasing partition
	// boundaries: shard i owns keys in [Splits[i-1], Splits[i]), shard 0
	// from zero, the last shard to the top of the keyspace. Every key a
	// shard's tree holds must fall in its interval — the scanner stitches
	// shards by concatenation on that premise.
	Splits []uint64
}

// NewTree assembles a sharded serving facade over already-built per-shard
// trees. The trees are used in place, not copied; the caller keeps
// ownership of their volumes and pools.
func NewTree(shards []*btree.Tree, opts *TreeOptions) (*Tree, error) {
	var o TreeOptions
	if opts != nil {
		o = *opts
	}
	if err := validateSplits(len(shards), o.Splits); err != nil {
		return nil, err
	}
	return &Tree{shards: shards, splits: append([]uint64(nil), o.Splits...)}, nil
}

// Shards returns the number of shards.
func (t *Tree) Shards() int { return len(t.shards) }

// Shard returns shard i's tree, for per-shard setup such as Warm.
func (t *Tree) Shard(i int) *btree.Tree { return t.shards[i] }

// Owner returns the index of the shard owning key.
func (t *Tree) Owner(key uint64) int { return ownerOf(t.splits, key) }

// Warm makes every shard's internal levels resident — the sharded serving
// posture.
func (t *Tree) Warm() error {
	for i, sh := range t.shards {
		if err := sh.Warm(); err != nil {
			return wrapShard(i, err)
		}
	}
	return nil
}

// Get routes a point lookup to the owning shard.
func (t *Tree) Get(key uint64) (uint64, bool, error) {
	sh := ownerOf(t.splits, key)
	v, ok, err := t.shards[sh].Get(key)
	if err != nil {
		return 0, false, wrapShard(sh, err)
	}
	return v, ok, nil
}

// GetBatch answers an aligned batch by cutting its sorted view at the
// partition boundaries and fanning the per-shard sub-batches out
// concurrently — each shard dedupes and stripes its own piece over its own
// disks.
func (t *Tree) GetBatch(keys []uint64) ([]uint64, []bool, error) {
	return fanOutBatch(t.splits, keys, func(sh int, sub []uint64) ([]uint64, []bool, error) {
		return t.shards[sh].GetBatch(sub)
	})
}

// Scan streams the records with keys in [lo, hi] in key order across
// shards: per-shard scanners opened lazily, concatenated in shard order.
func (t *Tree) Scan(lo, hi uint64) (index.Scanner, error) {
	first, last := ownerOf(t.splits, lo), ownerOf(t.splits, hi)
	segs := make([]scanSeg, 0, last-first+1)
	for i := first; i <= last; i++ {
		sh := t.shards[i]
		segs = append(segs, scanSeg{shard: i, open: func() (index.Scanner, error) {
			return sh.Scan(lo, hi)
		}})
	}
	return &Scanner{segs: segs}, nil
}

// NewSession opens a composed read session: one per-shard session each
// with its own reserved budget on its shard's pool. Zero (or out-of-range)
// arguments take each shard's configured defaults.
func (t *Tree) NewSession(cacheFrames, width int) (index.Session, error) {
	return newSession(t.splits, len(t.shards), func(i int) (index.Session, error) {
		return t.shards[i].NewSession(cacheFrames, width)
	})
}

// Stats aggregates the per-shard volume snapshots: counters summed,
// per-disk breakdowns concatenated in shard order.
func (t *Tree) Stats() pdm.Stats {
	var agg pdm.Stats
	for _, sh := range t.shards {
		addStats(&agg, sh.Stats())
	}
	return agg
}

// Close closes every shard's tree (flushing its cache), reporting the
// first failure with its shard index but closing the rest regardless.
func (t *Tree) Close() error {
	var first error
	for i, sh := range t.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = wrapShard(i, err)
		}
	}
	return first
}
