package store

import "em/internal/buffertree"

// probeLocked looks key up in the buffered overlays, newest first: the
// unsealed front's map, then the sealed front's. Caller holds mu (either
// mode). ok means some buffered operation mentions the key — possibly a
// tombstone — and the generation need not be consulted. The probe is pure
// memory: the disk-resident front buffers are the durable copy, the maps
// the read path.
func (s *Store) probeLocked(key uint64) (buffertree.Op, bool) {
	if op, ok := s.frontMap[key]; ok {
		return op, true
	}
	if s.sealedMap != nil {
		if op, ok := s.sealedMap[key]; ok {
			return op, true
		}
	}
	return buffertree.Op{}, false
}

// Get returns the value for key. The read reflects every operation
// accepted before it — read-your-writes, including while a drain is in
// flight.
func (s *Store) Get(key uint64) (uint64, bool, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return 0, false, ErrClosed
	}
	if op, ok := s.probeLocked(key); ok {
		s.mu.RUnlock()
		return op.Val, !op.Deleted(), nil
	}
	gen := s.gen
	gen.refs.Add(1)
	s.mu.RUnlock()
	// The generation's own buffer manager is not thread-safe; point reads
	// through it are serialized. Sessions read with private caches and
	// skip this lock.
	gen.mu.Lock()
	v, found, err := gen.tree.Get(key)
	gen.mu.Unlock()
	s.releaseGen(gen)
	return v, found, err
}

// GetBatch looks up many keys: buffered overlays first, the remainder
// through the generation's level-batched GetBatch, so the counted reads
// for the B-tree share stay at the parallel-disk batch cost. With
// admission control configured, a starved pool (the generation cache
// faulting pages in) queues and sheds instead of failing hard.
func (s *Store) GetBatch(keys []uint64) ([]uint64, []bool, error) {
	var vals []uint64
	var found []bool
	err := s.gate.Do(func() (err error) {
		vals, found, err = s.getBatch(keys)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return vals, found, nil
}

// getBatch is one un-gated batch-lookup attempt.
func (s *Store) getBatch(keys []uint64) ([]uint64, []bool, error) {
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, nil, ErrClosed
	}
	rest := make([]int, 0, len(keys))
	for i, k := range keys {
		if op, ok := s.probeLocked(k); ok {
			if !op.Deleted() {
				vals[i], found[i] = op.Val, true
			}
			continue
		}
		rest = append(rest, i)
	}
	gen := s.gen
	gen.refs.Add(1)
	s.mu.RUnlock()
	if len(rest) > 0 {
		sub := make([]uint64, len(rest))
		for j, i := range rest {
			sub[j] = keys[i]
		}
		gen.mu.Lock()
		v2, f2, err := gen.tree.GetBatch(sub)
		gen.mu.Unlock()
		if err != nil {
			s.releaseGen(gen)
			return nil, nil, err
		}
		for j, i := range rest {
			vals[i], found[i] = v2[j], f2[j]
		}
	}
	s.releaseGen(gen)
	return vals, found, nil
}
