package store

import (
	"sort"

	"em/internal/btree"
	"em/internal/buffertree"
	"em/internal/index"
	"em/internal/record"
	"em/internal/stream"
)

// collectRange gathers the overlay map's operations with keys in [lo, hi],
// key-sorted — the in-memory equivalent of buffertree.CollectRange.
func collectRange(m map[uint64]buffertree.Op, lo, hi uint64) []buffertree.Op {
	var out []buffertree.Op
	for k, op := range m {
		if k >= lo && k <= hi {
			out = append(out, op)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// mergeResolved merges two key-sorted resolved op slices, the higher Seq
// winning on equal keys (a holds the newer front's ops, but the Seq
// comparison keeps it correct regardless).
func mergeResolved(a, b []buffertree.Op) []buffertree.Op {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]buffertree.Op, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Key < b[j].Key:
			out = append(out, a[i])
			i++
		case a[i].Key > b[j].Key:
			out = append(out, b[j])
			j++
		default:
			if a[i].Seq >= b[j].Seq {
				out = append(out, a[i])
			} else {
				out = append(out, b[j])
			}
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// opsDelta adapts a resolved, key-sorted op slice to a stream.Source so it
// can feed a Scanner's stream.Patch.
type opsDelta struct {
	mem []buffertree.Op
	i   int
}

func (d *opsDelta) Next() (buffertree.Op, bool, error) {
	if d.i >= len(d.mem) {
		return buffertree.Op{}, false, nil
	}
	o := d.mem[d.i]
	d.i++
	return o, true, nil
}

func (d *opsDelta) Close() {}

// Scanner streams the records with keys in [lo, hi] in key order, as of
// the moment Scan was called: a consistent snapshot — the buffered
// overlays were collected under the view lock and the generation is
// pinned — that concurrent writes and drains cannot disturb. It implements
// stream.Source[record.Record].
type Scanner struct {
	s      *Store
	patch  *stream.Patch[buffertree.Op]
	sess   *btree.Session
	gen    *generation
	closed bool
}

// Scan opens a snapshot range scan over [lo, hi]. The underlying B-tree
// scan runs through a private read session (prefetched leaf reads, its own
// cache budget), overlaid with the buffered operations in range.
func (s *Store) Scan(lo, hi uint64) (index.Scanner, error) {
	var out index.Scanner
	err := s.gate.Do(func() error {
		sc, err := s.scan(lo, hi)
		if err != nil {
			return err
		}
		out = sc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// scan is one un-gated snapshot-scan attempt.
func (s *Store) scan(lo, hi uint64) (index.Scanner, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	mem := collectRange(s.frontMap, lo, hi)
	if s.sealedMap != nil {
		mem = mergeResolved(mem, collectRange(s.sealedMap, lo, hi))
	}
	gen := s.gen
	gen.refs.Add(1)
	s.mu.RUnlock()

	gen.mu.Lock()
	sess, err := gen.tree.NewSessionOn(s.pool, s.cfg.CacheFrames, s.cfg.Width)
	gen.mu.Unlock()
	if err != nil {
		s.releaseGen(gen)
		return nil, err
	}
	base, err := sess.NewScanner(lo, hi, nil)
	if err != nil {
		sess.Close()
		s.releaseGen(gen)
		return nil, err
	}
	patch := stream.NewPatch[buffertree.Op](base, &opsDelta{mem: mem},
		func(o buffertree.Op) uint64 { return o.Key },
		func(o buffertree.Op) (record.Record, bool) {
			return record.Record{Key: o.Key, Val: o.Val}, !o.Deleted()
		})
	return &Scanner{s: s, patch: patch, sess: sess, gen: gen}, nil
}

// Next returns the next record in the range.
func (sc *Scanner) Next() (record.Record, bool, error) {
	if sc.closed {
		return record.Record{}, false, nil
	}
	return sc.patch.Next()
}

// Close releases the scanner's session and its pin on the generation it
// snapshotted. Idempotent.
func (sc *Scanner) Close() {
	if sc.closed {
		return
	}
	sc.closed = true
	sc.patch.Close()
	if err := sc.sess.Close(); err != nil {
		sc.s.noteErr(err)
	}
	sc.s.releaseGen(sc.gen)
}
