package store

import (
	"em/internal/btree"
	"em/internal/index"
)

// The store and its sessions present the module-wide serving contract.
var (
	_ index.Index   = (*Store)(nil)
	_ index.Session = (*Session)(nil)
)

// Session is a point-read handle with a private cache budget: its B-tree
// reads go through a btree.Session, so many Sessions serve lookups
// concurrently without touching the shared generation cache. Reads stay
// read-your-writes — the buffered layers are consulted first on every
// call.
//
// A Session pins its generation: the generation's blocks outlive any
// handover until the Session closes. When a drain installs a newer
// generation the Session re-pins lazily on its next read, so it never
// serves a key that has already moved below its horizon from the wrong
// layer. Each Session is for one goroutine; distinct Sessions are safe
// concurrently.
type Session struct {
	s      *Store
	cache  int
	width  int
	gen    *generation
	sess   *btree.Session
	broken error
	closed bool
}

// NewSession opens a read session. cacheFrames sizes its private buffer
// manager (zero picks the store's CacheFrames) and width its scan/batch
// striping (zero picks the store's Width); the whole budget is reserved
// from the store's pool until Close.
func (s *Store) NewSession(cacheFrames, width int) (index.Session, error) {
	if cacheFrames < 3 {
		cacheFrames = s.cfg.CacheFrames
	}
	if width < 1 {
		width = s.cfg.Width
	}
	var out *Session
	err := s.gate.Do(func() error {
		s.mu.RLock()
		if s.closed {
			s.mu.RUnlock()
			return ErrClosed
		}
		gen := s.gen
		gen.refs.Add(1)
		s.mu.RUnlock()
		sess, err := openGenSession(gen, s, cacheFrames, width)
		if err != nil {
			s.releaseGen(gen)
			return err
		}
		out = &Session{s: s, cache: cacheFrames, width: width, gen: gen, sess: sess}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// openGenSession opens a btree session under the generation's cache lock
// (NewSession flushes the tree's own cache).
func openGenSession(gen *generation, s *Store, cacheFrames, width int) (*btree.Session, error) {
	gen.mu.Lock()
	defer gen.mu.Unlock()
	return gen.tree.NewSessionOn(s.pool, cacheFrames, width)
}

// repin moves the session onto cur, which the caller has already
// referenced. A failure poisons the session (its old generation is gone
// from the store's view; continuing to read it would not be
// read-your-writes).
func (ss *Session) repin(cur *generation) error {
	err := ss.sess.Close()
	ss.s.releaseGen(ss.gen)
	ss.gen = cur
	ss.sess = nil
	if err == nil {
		ss.sess, err = openGenSession(cur, ss.s, ss.cache, ss.width)
	}
	if err != nil {
		ss.broken = err
	}
	return err
}

// Get returns the value for key, read-your-writes.
func (ss *Session) Get(key uint64) (uint64, bool, error) {
	v, f, _, err := ss.read(key, nil)
	return v, f, err
}

// GetBatch looks up many keys, the buffered layers first and the
// remainder through the session's level-batched reads.
func (ss *Session) GetBatch(keys []uint64) ([]uint64, []bool, error) {
	_, _, out, err := ss.read(0, keys)
	if err != nil {
		return nil, nil, err
	}
	return out.vals, out.found, nil
}

type batchOut struct {
	vals  []uint64
	found []bool
}

// read serves both Get (keys == nil) and GetBatch under one overlay +
// re-pin sequence.
func (ss *Session) read(key uint64, keys []uint64) (uint64, bool, *batchOut, error) {
	if ss.closed {
		return 0, false, nil, ErrClosed
	}
	if ss.broken != nil {
		return 0, false, nil, ss.broken
	}
	s := ss.s
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return 0, false, nil, ErrClosed
	}
	var (
		out  *batchOut
		rest []int
	)
	if keys == nil {
		if o, ok := s.probeLocked(key); ok {
			s.mu.RUnlock()
			return o.Val, !o.Deleted(), nil, nil
		}
	} else {
		out = &batchOut{vals: make([]uint64, len(keys)), found: make([]bool, len(keys))}
		rest = make([]int, 0, len(keys))
		for i, k := range keys {
			if o, ok := s.probeLocked(k); ok {
				if !o.Deleted() {
					out.vals[i], out.found[i] = o.Val, true
				}
				continue
			}
			rest = append(rest, i)
		}
	}
	cur := s.gen
	moved := cur != ss.gen
	if moved {
		cur.refs.Add(1)
	}
	s.mu.RUnlock()
	if moved {
		if err := ss.repin(cur); err != nil {
			return 0, false, nil, err
		}
	}
	if keys == nil {
		v, f, err := ss.sess.Get(key)
		return v, f, nil, err
	}
	if len(rest) > 0 {
		sub := make([]uint64, len(rest))
		for j, i := range rest {
			sub[j] = keys[i]
		}
		v2, f2, err := ss.sess.GetBatch(sub)
		if err != nil {
			return 0, false, nil, err
		}
		for j, i := range rest {
			out.vals[i], out.found[i] = v2[j], f2[j]
		}
	}
	return 0, false, out, nil
}

// Close releases the session's budget and its generation pin.
func (ss *Session) Close() error {
	if ss.closed {
		return nil
	}
	ss.closed = true
	var err error
	if ss.sess != nil {
		err = ss.sess.Close()
	}
	ss.s.releaseGen(ss.gen)
	return err
}
