// Package store composes the module's write-optimal and read-optimal
// halves into an online updatable key-value index — the LSM shape the
// survey's buffer-tree section points at. Inserts and deletes are absorbed
// by a buffer-tree write front at amortised O((1/B)·log_m n) I/Os per
// operation; when the front crosses a configurable threshold it is frozen
// and drained in the background: the front's resolved, tombstone-carrying
// run (buffertree.SealOps) merges with a scan of the current B-tree
// generation (stream.Patch) through the write-behind bulk loader into a
// fresh generation at Θ(n/B) I/Os, and readers swap over atomically.
//
// Reads stay consistent throughout: Get, GetBatch, and Scan consult the
// unsealed front, the sealed front awaiting handover, and the current
// generation, newest layer first — each key's newest operation wins, so a
// drain is observationally a no-op. The two fronts' resolved operations
// are mirrored in memory (bounded by the seal threshold), so the overlay
// costs no I/O and read throughput holds through a drain.
// Generations are reference-counted: in-flight Scanners and Sessions keep
// their generation alive until they close, and a superseded generation's
// blocks are reclaimed (btree.Tree.Release) when its last reader departs.
package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"em/internal/btree"
	"em/internal/buffertree"
	"em/internal/index"
	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("store: closed")

const opBytes = 24 // encoded size of one buffered operation

// Config tunes the store.
type Config struct {
	// FrontOps seals the write front after this many buffered operations.
	// Zero picks FrontBytes/24 if FrontBytes is set, else 8192. Besides the
	// front's on-disk buffers, the store mirrors the front's resolved
	// operations in memory (24 bytes each, the buffer tree's root-mirror
	// idea extended to the bounded front), so FrontOps also bounds that
	// overlay: at most two fronts' worth while a drain is in flight.
	FrontOps int64
	// FrontBytes seals the write front after this many buffered bytes
	// (24 per operation). Zero defers to FrontOps.
	FrontBytes int64
	// CacheFrames sizes each generation's buffer manager and the drain's
	// loader cache. Zero means 8; minimum 3.
	CacheFrames int
	// Width is the striping width of reader scans and batched lookups;
	// zero picks the volume's disk count.
	Width int
	// DrainWidth is the stripe width of the background drain's streams
	// (the generation scan, the run reader, and the write-behind loader).
	// Zero picks half of Width, minimum 1: a handover that kept Width
	// reads in flight would queue foreground lookups behind the rebuild
	// on every disk, and serving during the drain is the point.
	DrainWidth int
	// Front shapes the buffer tree (fanout, per-node buffer). Zero-valued
	// fields default to fanout 8 and a four-block buffer; StartSeq is
	// managed by the store.
	Front buffertree.Config
	// AdmitQueue and AdmitWait enable admission control on the serving
	// entry points (GetBatch, Scan, NewSession): a request that finds the
	// pool starved joins a bounded FIFO of at most AdmitQueue waiters and
	// retries as frames free up, for at most AdmitWait, before shedding
	// with an index.OverloadError (which wraps pdm.ErrNoFrames). Both
	// zero — the default — leaves admission off; setting one picks the
	// package default for the other.
	AdmitQueue int
	AdmitWait  time.Duration
}

// generation is one immutable B-tree the store serves reads from. Point
// reads through the tree's own buffer manager are serialized by mu (the
// cache is not thread-safe); Sessions bypass it with private caches. refs
// counts the store's view plus every in-flight Scanner, Session, and
// drain; the tree's blocks are reclaimed when it hits zero.
type generation struct {
	tree  *btree.Tree
	epoch uint64
	mu    sync.Mutex
	refs  atomic.Int64
}

// Store is an online read-write key-value store. All methods are safe for
// concurrent use; the background drain runs beside foreground reads and
// writes.
type Store struct {
	vol  *pdm.Volume
	pool *pdm.Pool
	cfg  Config
	gate *index.Gate // admission over the serving entry points; nil = off

	sealOps int64 // effective front threshold in ops

	// The drain's construction budget, reserved once at Open (the
	// pipeline.SortIndex pattern): the background rebuild draws from its
	// own pool, so foreground readers never lose frames to it and a
	// too-small pool fails at Open, not mid-drain.
	drainPool *pdm.Pool
	reserve   []*pdm.Frame

	// mu guards the layered read view below. Readers hold RLock across
	// their overlay probes; all view swaps (write-front seal, generation
	// handover) happen under Lock, so a reader always sees one consistent
	// layering. frontMap and sealedMap mirror the two fronts' resolved
	// operations in memory — newest op per key — so overlay probes and
	// range collections cost no I/O: the disk-resident buffers are the
	// durable, write-optimal copy, the maps the bounded read path.
	// sealedMap is non-nil exactly while a sealed front awaits handover.
	mu        sync.RWMutex
	front     *buffertree.Tree // unsealed write front
	frontMap  map[uint64]buffertree.Op
	sealed    *buffertree.Tree // frozen front, until its drain retires it
	sealedMap map[uint64]buffertree.Op
	gen       *generation // current B-tree generation
	draining  bool
	drainDone chan struct{} // closed when the in-flight drain finishes
	drainErr  error         // sticky: writes fail after a failed drain
	drains    int64
	closed    bool

	wg sync.WaitGroup // in-flight drain goroutines

	errMu sync.Mutex
	bgErr error // background release errors, surfaced by Close
}

// Open creates a store on vol whose steady-state frames are drawn from
// pool. The drain budget (2·CacheFrames + 6·Width + 2 frames) is reserved
// from pool immediately and held until Close; the pool additionally
// serves each generation's cache, the front's buffers, and per-reader
// frames, so size it with headroom beyond the reservation.
func Open(vol *pdm.Volume, pool *pdm.Pool, cfg Config) (*Store, error) {
	if cfg.CacheFrames == 0 {
		cfg.CacheFrames = 8
	}
	if cfg.CacheFrames < 3 {
		cfg.CacheFrames = 3
	}
	if cfg.Width < 1 {
		cfg.Width = vol.Disks()
	}
	if cfg.DrainWidth < 1 {
		cfg.DrainWidth = cfg.Width / 2
		if cfg.DrainWidth < 1 {
			cfg.DrainWidth = 1
		}
	}
	if cfg.Front.Fanout == 0 {
		cfg.Front.Fanout = 8
	}
	if cfg.Front.BufferRecords == 0 {
		cfg.Front.BufferRecords = 4 * (vol.BlockBytes() / opBytes)
	}
	sealOps := cfg.FrontOps
	if sealOps <= 0 {
		if cfg.FrontBytes > 0 {
			sealOps = cfg.FrontBytes / opBytes
		} else {
			sealOps = 8192
		}
	}
	if sealOps < 1 {
		sealOps = 1
	}
	drainFrames := 2*cfg.CacheFrames + 6*cfg.Width + 2
	reserve, err := pool.AllocN(drainFrames)
	if err != nil {
		return nil, err
	}
	s := &Store{
		vol:       vol,
		pool:      pool,
		cfg:       cfg,
		gate:      index.NewGate(pool, cfg.AdmitQueue, cfg.AdmitWait),
		sealOps:   sealOps,
		drainPool: pdm.NewPool(vol.BlockBytes(), drainFrames),
		reserve:   reserve,
	}
	tree, err := btree.New(vol, pool, cfg.CacheFrames)
	if err != nil {
		pdm.ReleaseAll(reserve)
		return nil, err
	}
	s.gen = &generation{tree: tree, epoch: 1}
	s.gen.refs.Store(1)
	front, err := s.newFront(0)
	if err != nil {
		tree.Release()
		pdm.ReleaseAll(reserve)
		return nil, err
	}
	s.front = front
	s.frontMap = make(map[uint64]buffertree.Op)
	return s, nil
}

func (s *Store) newFront(startSeq uint64) (*buffertree.Tree, error) {
	fc := s.cfg.Front
	fc.StartSeq = startSeq
	return buffertree.New(s.vol, s.pool, fc)
}

// Insert buffers an insertion of (key, val); later operations on the same
// key win. Crossing the front threshold triggers a background drain.
func (s *Store) Insert(key, val uint64) error {
	return s.update(key, val, false)
}

// Delete buffers a deletion of key; deleting an absent key is a no-op.
func (s *Store) Delete(key uint64) error {
	return s.update(key, 0, true)
}

func (s *Store) update(key, val uint64, del bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.drainErr != nil {
		return s.drainErr
	}
	var err error
	if del {
		err = s.front.Delete(key)
	} else {
		err = s.front.Insert(key, val)
	}
	if err != nil {
		return err
	}
	// Mirror the operation the front just accepted: its sequence number is
	// the front's newest, encoded as the buffer tree does.
	op := buffertree.Op{Key: key, Val: val, Seq: s.front.LastSeq() << 1}
	if del {
		op.Seq |= 1
	}
	s.frontMap[key] = op
	s.maybeSealLocked()
	return nil
}

func (s *Store) overLocked() bool {
	return s.front.Ops() >= s.sealOps
}

func (s *Store) maybeSealLocked() {
	if s.draining || s.sealedMap != nil || !s.overLocked() {
		return
	}
	s.sealLocked()
}

// sealLocked freezes the current front, swaps in a fresh one continuing
// the sequence numbering, and starts the background drain. Caller holds
// mu exclusively.
func (s *Store) sealLocked() {
	old := s.front
	if err := old.Freeze(); err != nil {
		s.drainErr = err
		return
	}
	next, err := s.newFront(old.LastSeq())
	if err != nil {
		s.drainErr = err
		return
	}
	s.front = next
	s.sealed = old
	s.sealedMap = s.frontMap
	s.frontMap = make(map[uint64]buffertree.Op)
	s.draining = true
	done := make(chan struct{})
	s.drainDone = done
	gen := s.gen
	gen.refs.Add(1)
	s.wg.Add(1)
	go s.drain(old, gen, done)
}

// drain runs one background drain to completion, then retriggers if the
// new front already crossed the threshold while the drain ran.
func (s *Store) drain(front *buffertree.Tree, gen *generation, done chan struct{}) {
	defer s.wg.Done()
	err := s.drainOnce(front, gen)
	s.mu.Lock()
	s.draining = false
	if err != nil && s.drainErr == nil {
		s.drainErr = err
	}
	if err == nil && s.drainErr == nil && !s.closed && s.overLocked() {
		s.sealLocked()
	}
	s.mu.Unlock()
	s.releaseGen(gen)
	close(done)
}

// drainOnce is one front handover: seal the frozen front to a sorted run,
// release the front's buffers (the in-memory sealedMap keeps serving its
// contents to readers throughout), rebuild the next generation from
// run ⊕ current generation on the private drain budget, and swap readers
// over, retiring the sealedMap in the same swap.
func (s *Store) drainOnce(front *buffertree.Tree, gen *generation) error {
	run, err := front.SealOps()
	if err != nil {
		// The frozen front keeps its buffers (SealOps failure is
		// non-destructive); Close releases them. Reads stay correct off
		// the sealedMap ⊕ generation; writes fail sticky.
		return err
	}
	s.mu.Lock()
	s.sealed = nil
	s.mu.Unlock()
	front.ReleaseBuffers()

	tree, err := s.buildGen(gen, run)
	if err != nil {
		// Reads remain correct (frontMap ⊕ sealedMap ⊕ generation) even
		// though the store no longer accepts writes.
		run.Release()
		return err
	}
	run.Release()
	next := &generation{tree: tree, epoch: gen.epoch + 1}
	next.refs.Store(1)
	s.mu.Lock()
	oldGen := s.gen
	s.gen = next
	s.sealedMap = nil
	s.drains++
	s.mu.Unlock()
	s.releaseGen(oldGen)
	return nil
}

// buildGen merges the sealed run into a scan of the current generation and
// bulk-loads the result into a fresh tree, entirely on the drain budget
// and at DrainWidth striping so foreground lookups keep disk headroom;
// the finished tree is rehomed onto the store's pool and warmed so
// descents after the swap are memory hits.
func (s *Store) buildGen(gen *generation, run *buffertree.Run) (*btree.Tree, error) {
	w := s.cfg.DrainWidth
	gen.mu.Lock()
	sess, err := gen.tree.NewSessionOn(s.drainPool, s.cfg.CacheFrames, w)
	gen.mu.Unlock()
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	base, err := sess.NewScanner(0, ^uint64(0), nil)
	if err != nil {
		return nil, err
	}
	delta, err := stream.OpenSource(run.File(), s.drainPool, w, true)
	if err != nil {
		base.Close()
		return nil, err
	}
	patch := stream.NewPatch(base, delta,
		func(o buffertree.Op) uint64 { return o.Key },
		func(o buffertree.Op) (record.Record, bool) {
			return record.Record{Key: o.Key, Val: o.Val}, !o.Deleted()
		})
	tree, err := btree.BulkLoadFrom(s.vol, s.drainPool, s.cfg.CacheFrames, patch,
		&btree.BulkLoadOptions{Width: w, Async: true, WriteBehind: true})
	patch.Close()
	if err != nil {
		return nil, err
	}
	if err := tree.Rehome(s.pool, s.cfg.CacheFrames); err != nil {
		tree.Release()
		return nil, err
	}
	if err := tree.Warm(); err != nil {
		tree.Release()
		return nil, err
	}
	return tree, nil
}

// releaseGen drops one reference; the last one out reclaims the tree.
func (s *Store) releaseGen(g *generation) {
	if g.refs.Add(-1) == 0 {
		if err := g.tree.Release(); err != nil {
			s.noteErr(err)
		}
	}
}

func (s *Store) noteErr(err error) {
	s.errMu.Lock()
	if s.bgErr == nil {
		s.bgErr = err
	}
	s.errMu.Unlock()
}

// StartDrain seals the current front and starts a background drain if one
// is not already in flight; it reports whether a drain is now running.
func (s *Store) StartDrain() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.drainErr != nil {
		return false
	}
	if !s.draining && s.sealedMap == nil && s.front.Ops() > 0 {
		s.sealLocked()
	}
	return s.draining
}

// Draining reports whether a background drain is in flight.
func (s *Store) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// Drain flushes everything buffered at the time of the call into the
// current generation and waits for quiescence.
func (s *Store) Drain() error {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		if s.drainErr != nil {
			err := s.drainErr
			s.mu.Unlock()
			return err
		}
		if !s.draining && s.sealedMap == nil {
			if s.front.Ops() == 0 {
				s.mu.Unlock()
				return nil
			}
			s.sealLocked()
		}
		done := s.drainDone
		draining := s.draining
		s.mu.Unlock()
		if draining && done != nil {
			<-done
		}
	}
}

// Stats returns a snapshot of the underlying volume's I/O counters.
func (s *Store) Stats() pdm.Stats { return s.vol.Stats().Snapshot() }

// Epoch returns the current generation's number, starting at 1.
func (s *Store) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen.epoch
}

// Drains returns the number of completed front drains.
func (s *Store) Drains() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.drains
}

// FrontOps returns the number of operations buffered in the unsealed
// front.
func (s *Store) FrontOps() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.front.Ops()
}

// Close waits for any in-flight drain, releases every layer of the view,
// and returns the drain reservation. Generations pinned by still-open
// Scanners or Sessions are reclaimed when those close. The first sticky
// drain or background-release error is returned.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()

	s.mu.Lock()
	s.front.ReleaseBuffers()
	if s.sealed != nil {
		s.sealed.ReleaseBuffers()
		s.sealed = nil
	}
	s.frontMap, s.sealedMap = nil, nil
	gen := s.gen
	s.gen = nil
	err := s.drainErr
	s.mu.Unlock()

	s.releaseGen(gen)
	pdm.ReleaseAll(s.reserve)
	s.reserve = nil
	if err != nil {
		return err
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.bgErr
}
