package store

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"em/internal/buffertree"
	"em/internal/pdm"
)

func testConfig() pdm.Config {
	return pdm.Config{BlockBytes: 512, MemBlocks: 96, Disks: 2}
}

func storeConfig() Config {
	return Config{
		FrontOps:    100,
		CacheFrames: 4,
		Width:       2,
		Front:       buffertree.Config{Fanout: 4, BufferRecords: 32},
	}
}

// forEachBackend runs fn against a memory-backed and a file-backed volume
// of identical shape, mirroring the pdm, stream, and btree harnesses.
func forEachBackend(t *testing.T, cfg pdm.Config, fn func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		vol := pdm.MustVolume(cfg)
		defer vol.Close()
		fn(t, vol, pdm.PoolFor(vol))
	})
	t.Run("file", func(t *testing.T) {
		c := cfg
		c.Dir = t.TempDir()
		vol := pdm.MustVolume(c)
		defer func() {
			if err := vol.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		fn(t, vol, pdm.PoolFor(vol))
	})
}

func scanAll(t *testing.T, s *Store) map[uint64]uint64 {
	t.Helper()
	sc, err := s.Scan(0, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	got := map[uint64]uint64{}
	last := int64(-1)
	for {
		r, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if int64(r.Key) <= last {
			t.Fatalf("scan out of order: %d after %d", r.Key, last)
		}
		last = int64(r.Key)
		got[r.Key] = r.Val
	}
	return got
}

// TestStoreQuickMatchesMap drives a random interleaving of inserts,
// deletes, and drains against an in-memory reference map, checking point
// reads along the way and the full scan at the end — on both backends.
func TestStoreQuickMatchesMap(t *testing.T) {
	forEachBackend(t, testConfig(), func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		s, err := Open(vol, pool, storeConfig())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		ref := map[uint64]uint64{}
		const keySpace = 120
		for i := 0; i < 2500; i++ {
			k := uint64(rng.Intn(keySpace))
			switch rng.Intn(4) {
			case 0:
				if err := s.Delete(k); err != nil {
					t.Fatal(err)
				}
				delete(ref, k)
			default:
				v := uint64(rng.Intn(1 << 30))
				if err := s.Insert(k, v); err != nil {
					t.Fatal(err)
				}
				ref[k] = v
			}
			if rng.Intn(200) == 0 {
				if err := s.Drain(); err != nil {
					t.Fatal(err)
				}
			}
			if rng.Intn(10) == 0 {
				q := uint64(rng.Intn(keySpace))
				v, ok, err := s.Get(q)
				if err != nil {
					t.Fatal(err)
				}
				want, wok := ref[q]
				if ok != wok || (ok && v != want) {
					t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", i, q, v, ok, want, wok)
				}
			}
		}
		// Batched lookups over the whole key space.
		keys := make([]uint64, keySpace)
		for i := range keys {
			keys[i] = uint64(i)
		}
		vals, found, err := s.GetBatch(keys)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			want, wok := ref[k]
			if found[i] != wok || (wok && vals[i] != want) {
				t.Fatalf("GetBatch(%d) = (%d,%v), want (%d,%v)", k, vals[i], found[i], want, wok)
			}
		}
		// Scan before quiescing (layers still populated), then after.
		for pass := 0; pass < 2; pass++ {
			got := scanAll(t, s)
			if len(got) != len(ref) {
				t.Fatalf("pass %d: scan found %d keys, want %d", pass, len(got), len(ref))
			}
			for k, v := range ref {
				if got[k] != v {
					t.Fatalf("pass %d: scan[%d] = %d, want %d", pass, k, got[k], v)
				}
			}
			if pass == 0 {
				if err := s.Drain(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if s.Drains() == 0 {
			t.Fatal("no drain ever ran; thresholds too loose for the test to mean anything")
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if got := pool.InUse(); got != 0 {
			t.Fatalf("pool leak: %d frames in use after close", got)
		}
		if live := vol.Allocated() - vol.FreeBlocks(); live != 0 {
			t.Fatalf("block leak: %d live blocks after close", live)
		}
	})
}

// TestStoreDeleteEverything checks tombstone cancellation end to end: a
// drained store whose every key was deleted serves an empty scan and an
// empty next generation.
func TestStoreDeleteEverything(t *testing.T) {
	forEachBackend(t, testConfig(), func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		s, err := Open(vol, pool, storeConfig())
		if err != nil {
			t.Fatal(err)
		}
		const n = 300
		for k := uint64(0); k < n; k++ {
			if err := s.Insert(k, k*3); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < n; k++ {
			if err := s.Delete(k); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		if got := scanAll(t, s); len(got) != 0 {
			t.Fatalf("scan after deleting everything found %d keys", len(got))
		}
		for _, k := range []uint64{0, 1, n - 1, n / 2} {
			if _, ok, err := s.Get(k); err != nil || ok {
				t.Fatalf("Get(%d) after delete-all = ok=%v err=%v", k, ok, err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if live := vol.Allocated() - vol.FreeBlocks(); live != 0 {
			t.Fatalf("block leak: %d live blocks after close", live)
		}
	})
}

// TestStoreScannerSnapshot opens a scanner, then mutates and drains the
// store underneath it; the scanner must deliver exactly the records that
// existed at open time (the drain handover may not disturb it).
func TestStoreScannerSnapshot(t *testing.T) {
	forEachBackend(t, testConfig(), func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		s, err := Open(vol, pool, storeConfig())
		if err != nil {
			t.Fatal(err)
		}
		ref := map[uint64]uint64{}
		for k := uint64(0); k < 400; k++ {
			if err := s.Insert(k, k+7); err != nil {
				t.Fatal(err)
			}
			ref[k] = k + 7
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		// Leave updates buffered in the front so the snapshot spans layers.
		for k := uint64(0); k < 50; k++ {
			if err := s.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(ref, k)
		}
		sc, err := s.Scan(0, ^uint64(0))
		if err != nil {
			t.Fatal(err)
		}
		// Mutate heavily after the snapshot, forcing drains and a
		// generation handover while the scanner is mid-flight.
		for k := uint64(0); k < 400; k++ {
			if err := s.Insert(k, 999999); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		want := make([]uint64, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, k := range want {
			r, ok, err := sc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok || r.Key != k || r.Val != ref[k] {
				t.Fatalf("snapshot scan: got (%d,%d,%v), want (%d,%d)", r.Key, r.Val, ok, k, ref[k])
			}
		}
		if _, ok, err := sc.Next(); err != nil || ok {
			t.Fatalf("snapshot scan should be exhausted, ok=%v err=%v", ok, err)
		}
		sc.Close()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if got := pool.InUse(); got != 0 {
			t.Fatalf("pool leak: %d frames in use after close", got)
		}
		if live := vol.Allocated() - vol.FreeBlocks(); live != 0 {
			t.Fatalf("block leak: %d live blocks after close", live)
		}
	})
}

// TestStoreSessionAcrossDrain checks that a Session stays read-your-writes
// across generation handovers: keys that migrate from the front into a new
// generation must remain visible through the same session.
func TestStoreSessionAcrossDrain(t *testing.T) {
	forEachBackend(t, testConfig(), func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		s, err := Open(vol, pool, storeConfig())
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 200; k++ {
			if err := s.Insert(k, k); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		sess, err := s.NewSession(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v, ok, err := sess.Get(10); err != nil || !ok || v != 10 {
			t.Fatalf("session Get(10) = (%d,%v,%v)", v, ok, err)
		}
		epoch := s.Epoch()
		for k := uint64(200); k < 500; k++ {
			if err := s.Insert(k, k*2); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		if s.Epoch() == epoch {
			t.Fatal("drain did not advance the epoch")
		}
		// 250 moved front -> generation; the session must re-pin and see it.
		if v, ok, err := sess.Get(250); err != nil || !ok || v != 500 {
			t.Fatalf("session Get(250) after handover = (%d,%v,%v)", v, ok, err)
		}
		vals, found, err := sess.GetBatch([]uint64{10, 250, 900})
		if err != nil {
			t.Fatal(err)
		}
		if !found[0] || vals[0] != 10 || !found[1] || vals[1] != 500 || found[2] {
			t.Fatalf("session GetBatch = %v %v", vals, found)
		}
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if got := pool.InUse(); got != 0 {
			t.Fatalf("pool leak: %d frames in use after close", got)
		}
		if live := vol.Allocated() - vol.FreeBlocks(); live != 0 {
			t.Fatalf("block leak: %d live blocks after close", live)
		}
	})
}

// TestStoreReadsDuringDrain is the concurrency property behind the whole
// design: reader goroutines observe a consistent view — stable keys always
// present, per-key transitions monotone — while a writer forces seals,
// background drains, and generation handovers. Run under -race (make ci)
// it also checks the handover's memory ordering.
func TestStoreReadsDuringDrain(t *testing.T) {
	forEachBackend(t, testConfig(), func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		s, err := Open(vol, pool, storeConfig())
		if err != nil {
			t.Fatal(err)
		}
		const stable = 200 // odd keys below are never touched again
		for k := uint64(0); k < stable; k++ {
			if err := s.Insert(k, k); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				gone := map[uint64]bool{}    // even stable keys observed deleted
				arrived := map[uint64]bool{} // new keys observed present
				for {
					select {
					case <-done:
						return
					default:
					}
					k := uint64(rng.Intn(2 * stable))
					v, ok, err := s.Get(k)
					if err != nil {
						errs <- err
						return
					}
					switch {
					case k < stable && k%2 == 1:
						if !ok || v != k {
							errs <- errMismatch(k, v, ok)
							return
						}
					case k < stable:
						if ok && v != k {
							errs <- errMismatch(k, v, ok)
							return
						}
						if !ok {
							gone[k] = true
						} else if gone[k] {
							errs <- errMismatch(k, v, ok) // deletion un-happened
							return
						}
					default:
						if ok && v != k*10 {
							errs <- errMismatch(k, v, ok)
							return
						}
						if ok {
							arrived[k] = true
						} else if arrived[k] {
							errs <- errMismatch(k, v, ok) // insert un-happened
							return
						}
					}
				}
			}(int64(r + 1))
		}
		// Writer: delete even stable keys, insert new keys, across several
		// forced drains.
		for k := uint64(0); k < stable; k += 2 {
			if err := s.Delete(k); err != nil {
				t.Fatal(err)
			}
			if err := s.Insert(stable+k, (stable+k)*10); err != nil {
				t.Fatal(err)
			}
			if err := s.Insert(stable+k+1, (stable+k+1)*10); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		close(done)
		wg.Wait()
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if got := pool.InUse(); got != 0 {
			t.Fatalf("pool leak: %d frames in use after close", got)
		}
		if live := vol.Allocated() - vol.FreeBlocks(); live != 0 {
			t.Fatalf("block leak: %d live blocks after close", live)
		}
	})
}

func errMismatch(k, v uint64, ok bool) error {
	return fmt.Errorf("inconsistent read during drain: key %d -> (%d, %v)", k, v, ok)
}
