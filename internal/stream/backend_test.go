package stream

import (
	"reflect"
	"testing"
	"time"

	"em/internal/pdm"
	"em/internal/record"
)

// forEachBackend runs fn against a memory-backed and a file-backed volume
// of identical shape — the stream layer's variant of the pdm harness,
// checking that nothing above the Volume can tell the backends apart.
func forEachBackend(t *testing.T, cfg pdm.Config, fn func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) {
		vol := pdm.MustVolume(cfg)
		defer vol.Close()
		fn(t, vol, pdm.PoolFor(vol))
	})
	t.Run("file", func(t *testing.T) {
		c := cfg
		c.Dir = t.TempDir()
		vol := pdm.MustVolume(c)
		defer func() {
			if err := vol.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		fn(t, vol, pdm.PoolFor(vol))
	})
}

// TestBackendFileRoundTrip round-trips a record file through FromSlice and
// ToSlice on both backends and asserts identical Stats snapshots.
func TestBackendFileRoundTrip(t *testing.T) {
	cfg := pdm.Config{BlockBytes: 64, MemBlocks: 8, Disks: 3}
	in := recs(513)
	var snaps []pdm.Stats
	forEachBackend(t, cfg, func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		f, err := FromSlice(vol, pool, record.RecordCodec{}, in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ToSlice(f, pool)
		if err != nil {
			t.Fatal(err)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("record %d mismatch", i)
			}
		}
		if pool.InUse() != 0 {
			t.Fatalf("leaked %d frames", pool.InUse())
		}
		snaps = append(snaps, vol.Stats().Snapshot())
	})
	if len(snaps) == 2 && !reflect.DeepEqual(snaps[0], snaps[1]) {
		t.Fatalf("stats diverge across backends: mem %+v file %+v", snaps[0], snaps[1])
	}
}

// TestBackendAsyncStreams runs the forecasting reader and write-behind
// writer — including on a worker-engine volume — against both backends and
// asserts the counted I/Os match the synchronous paths on each.
func TestBackendAsyncStreams(t *testing.T) {
	cfg := pdm.Config{BlockBytes: 64, MemBlocks: 16, Disks: 4, DiskLatency: 5 * time.Microsecond}
	in := recs(777)
	forEachBackend(t, cfg, func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
		// Write-behind writer.
		f := NewFile[record.Record](vol, record.RecordCodec{})
		vol.Stats().Reset()
		w, err := NewAsyncWriter(f, pool, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range in {
			if err := w.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		asyncWrites := vol.Stats().Snapshot().Writes

		sf := NewFile[record.Record](vol, record.RecordCodec{})
		vol.Stats().Reset()
		sw, err := NewStripedWriter(sf, pool, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range in {
			if err := sw.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		if syncWrites := vol.Stats().Snapshot().Writes; syncWrites != asyncWrites {
			t.Fatalf("write counts diverge: async %d sync %d", asyncWrites, syncWrites)
		}

		// Forecasting reader vs synchronous striped reader.
		vol.Stats().Reset()
		r, err := NewPrefetchReader(f, pool, 2)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for {
			v, ok, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if v != in[i] {
				t.Fatalf("record %d differs", i)
			}
			i++
		}
		r.Close()
		if i != len(in) {
			t.Fatalf("read %d records, want %d", i, len(in))
		}
		asyncReads := vol.Stats().Snapshot().Reads

		vol.Stats().Reset()
		sr, err := NewStripedReader(f, pool, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := Drain[record.Record](sr, func(record.Record) error { return nil }); err != nil {
			t.Fatal(err)
		}
		sr.Close()
		if syncReads := vol.Stats().Snapshot().Reads; syncReads != asyncReads {
			t.Fatalf("read counts diverge: async %d sync %d", asyncReads, syncReads)
		}
		if pool.InUse() != 0 {
			t.Fatalf("leaked %d frames", pool.InUse())
		}
	})
}
