package stream

import "em/internal/record"

// Patch merges a key-sorted base of records with a key-sorted delta of
// operations into one key-sorted record source — the generational merge at
// the heart of an LSM-shaped store: base is the current B-tree
// generation's scan, delta the sealed write front's resolved run, and the
// output feeds the bulk loader of the next generation. On equal keys the
// delta wins; a delta entry that materialises to nothing (a delete
// tombstone) suppresses the base record and emits nothing. Delta entries
// for keys absent from the base insert (or, for tombstones, vanish — a
// delete of a never-inserted key is a no-op).
//
// The delta type is generic so this package does not depend on any one
// operation encoding: key extracts the entry's key, and rec materialises
// it as a record, returning false for tombstones.
type Patch[D any] struct {
	base  Source[record.Record]
	delta Source[D]
	key   func(D) uint64
	rec   func(D) (record.Record, bool)

	baseV   record.Record
	baseOK  bool
	deltaV  D
	deltaOK bool
	primed  bool
	err     error
}

// NewPatch builds a Patch over base and delta. Both inputs must be sorted
// by strictly increasing key; the output then is too, so it can drive
// btree.BulkLoadFrom directly. Closing the patch closes both inputs.
func NewPatch[D any](base Source[record.Record], delta Source[D], key func(D) uint64, rec func(D) (record.Record, bool)) *Patch[D] {
	return &Patch[D]{base: base, delta: delta, key: key, rec: rec}
}

func (p *Patch[D]) advanceBase() {
	p.baseV, p.baseOK, p.err = p.base.Next()
}

func (p *Patch[D]) advanceDelta() {
	p.deltaV, p.deltaOK, p.err = p.delta.Next()
}

// Next returns the next merged record.
func (p *Patch[D]) Next() (record.Record, bool, error) {
	if p.err != nil {
		return record.Record{}, false, p.err
	}
	if !p.primed {
		p.primed = true
		if p.advanceBase(); p.err != nil {
			return record.Record{}, false, p.err
		}
		if p.advanceDelta(); p.err != nil {
			return record.Record{}, false, p.err
		}
	}
	for {
		if p.deltaOK && (!p.baseOK || p.key(p.deltaV) <= p.baseV.Key) {
			d := p.deltaV
			if p.baseOK && p.baseV.Key == p.key(d) {
				if p.advanceBase(); p.err != nil {
					return record.Record{}, false, p.err
				}
			}
			if p.advanceDelta(); p.err != nil {
				return record.Record{}, false, p.err
			}
			if r, ok := p.rec(d); ok {
				return r, true, nil
			}
			continue // tombstone: the shadowed base record (if any) is gone
		}
		if p.baseOK {
			r := p.baseV
			if p.advanceBase(); p.err != nil {
				return record.Record{}, false, p.err
			}
			return r, true, nil
		}
		return record.Record{}, false, nil
	}
}

// Close closes both inputs.
func (p *Patch[D]) Close() {
	p.base.Close()
	p.delta.Close()
}
