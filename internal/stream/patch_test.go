package stream

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"em/internal/record"
)

// sliceSource adapts a slice to Source for merge tests.
type sliceSource[T any] struct {
	items  []T
	i      int
	err    error // returned once position errAt is reached, if set
	errAt  int
	closed bool
}

func (s *sliceSource[T]) Next() (T, bool, error) {
	var zero T
	if s.err != nil && s.i >= s.errAt {
		return zero, false, s.err
	}
	if s.i >= len(s.items) {
		return zero, false, nil
	}
	v := s.items[s.i]
	s.i++
	return v, true, nil
}

func (s *sliceSource[T]) Close() { s.closed = true }

// deltaOp is a minimal op encoding for the generic delta side.
type deltaOp struct {
	key uint64
	val uint64
	del bool
}

func runPatch(t *testing.T, base []record.Record, delta []deltaOp) []record.Record {
	t.Helper()
	b := &sliceSource[record.Record]{items: base}
	d := &sliceSource[deltaOp]{items: delta}
	p := NewPatch[deltaOp](b, d,
		func(o deltaOp) uint64 { return o.key },
		func(o deltaOp) (record.Record, bool) {
			return record.Record{Key: o.key, Val: o.val}, !o.del
		})
	var out []record.Record
	for {
		r, ok, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, r)
	}
	p.Close()
	if !b.closed || !d.closed {
		t.Fatal("Close did not close both inputs")
	}
	return out
}

func TestPatchMerge(t *testing.T) {
	base := []record.Record{{Key: 1, Val: 10}, {Key: 3, Val: 30}, {Key: 5, Val: 50}, {Key: 7, Val: 70}}
	delta := []deltaOp{
		{key: 2, val: 200},  // insert between
		{key: 3, val: 300},  // overwrite
		{key: 5, del: true}, // delete existing
		{key: 6, del: true}, // delete absent: no-op
		{key: 9, val: 900},  // insert past end
	}
	got := runPatch(t, base, delta)
	want := []record.Record{{Key: 1, Val: 10}, {Key: 2, Val: 200}, {Key: 3, Val: 300}, {Key: 7, Val: 70}, {Key: 9, Val: 900}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("at %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPatchEmptySides(t *testing.T) {
	if got := runPatch(t, nil, nil); len(got) != 0 {
		t.Fatalf("empty/empty yielded %v", got)
	}
	base := []record.Record{{Key: 1, Val: 1}, {Key: 2, Val: 2}}
	if got := runPatch(t, base, nil); len(got) != 2 {
		t.Fatalf("base-only yielded %v", got)
	}
	if got := runPatch(t, nil, []deltaOp{{key: 4, val: 4}, {key: 8, del: true}}); len(got) != 1 || got[0].Key != 4 {
		t.Fatalf("delta-only yielded %v", got)
	}
}

func TestPatchRandomAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		ref := map[uint64]uint64{}
		var base []record.Record
		for k := uint64(0); k < 64; k++ {
			if rng.Intn(2) == 0 {
				v := rng.Uint64()
				base = append(base, record.Record{Key: k, Val: v})
				ref[k] = v
			}
		}
		var delta []deltaOp
		for k := uint64(0); k < 64; k++ {
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint64()
				delta = append(delta, deltaOp{key: k, val: v})
				ref[k] = v
			case 1:
				delta = append(delta, deltaOp{key: k, del: true})
				delete(ref, k)
			}
		}
		got := runPatch(t, base, delta)
		var wantKeys []uint64
		for k := range ref {
			wantKeys = append(wantKeys, k)
		}
		sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
		if len(got) != len(wantKeys) {
			t.Fatalf("trial %d: %d records, want %d", trial, len(got), len(wantKeys))
		}
		for i, k := range wantKeys {
			if got[i].Key != k || got[i].Val != ref[k] {
				t.Fatalf("trial %d: at %d got %v, want key %d val %d", trial, i, got[i], k, ref[k])
			}
		}
	}
}

func TestPatchStickyError(t *testing.T) {
	boom := errors.New("boom")
	b := &sliceSource[record.Record]{items: []record.Record{{Key: 1}, {Key: 2}, {Key: 3}}, err: boom, errAt: 2}
	d := &sliceSource[deltaOp]{}
	p := NewPatch[deltaOp](b, d,
		func(o deltaOp) uint64 { return o.key },
		func(o deltaOp) (record.Record, bool) { return record.Record{Key: o.key, Val: o.val}, !o.del })
	var err error
	for i := 0; i < 10; i++ {
		if _, _, err = p.Next(); err != nil {
			break
		}
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error not surfaced: %v", err)
	}
	if _, ok, err2 := p.Next(); ok || !errors.Is(err2, boom) {
		t.Fatal("error not sticky")
	}
	p.Close()
}
