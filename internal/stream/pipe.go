// Sort→consumer pipelining over durable block groups.
//
// A producer that writes a file strictly in order — the distribution sort's
// final output writer — knows, flush by flush, which prefix of the file is
// already safely on the volume. TailPipe carries exactly that knowledge to
// a concurrent consumer: each durable block group's addresses travel
// through a bounded channel, and TailSource reads the blocks back with its
// own frames, decoding records while the producer is still writing later
// groups. Only addresses cross the channel — the record bytes stay on the
// volume and are re-read by the consumer, charged as ordinary block reads —
// so the pipe adds overlap, not an uncounted memory side-channel: the
// consumer's reads are the same BatchRead calls, over the same group
// boundaries, it would have issued scanning the finished file afterwards.
//
// The channel bound is backpressure: a producer more than depth groups
// ahead of its consumer blocks in Notify until the consumer catches up, and
// a consumer whose producer has gone away (CloseSend) or failed sees the
// producer's error after draining the queued groups. Closing the source
// releases any blocked producer with ErrPipeClosed, which unwinds the
// producer through its normal error paths.
package stream

import (
	"errors"
	"fmt"
	"sync"

	"em/internal/pdm"
	"em/internal/record"
)

// ErrPipeClosed reports a producer notifying a pipeline whose consumer has
// gone away.
var ErrPipeClosed = errors.New("stream: tail pipe closed by consumer")

// TailChunk is one durable block group announced through a TailPipe: the
// group's block addresses in file order and the records they carry.
type TailChunk struct {
	Addrs []int64
	Recs  int
}

// TailPipe connects a writer's flush notifications to a TailSource. Create
// one per pipeline; the producer side is Notify (a FlushFunc) plus a final
// CloseSend, the consumer side is NewTailSource.
type TailPipe struct {
	ch   chan TailChunk
	done chan struct{}

	mu         sync.Mutex
	err        error
	sendClosed bool
	doneOnce   sync.Once
}

// NewTailPipe creates a pipe buffering at most depth block groups; depth
// below 1 is raised to 1. The bound is distance, not memory: chunks hold
// addresses only.
func NewTailPipe(depth int) *TailPipe {
	if depth < 1 {
		depth = 1
	}
	return &TailPipe{ch: make(chan TailChunk, depth), done: make(chan struct{})}
}

// Notify is the producer half, shaped as a FlushFunc for OpenSinkNotify. It
// blocks while the pipe is full and returns ErrPipeClosed once the consumer
// has closed its end, so an abandoned producer unwinds instead of stalling.
func (p *TailPipe) Notify(addrs []int64, recs int) error {
	if recs == 0 {
		return nil
	}
	select {
	case p.ch <- TailChunk{Addrs: addrs, Recs: recs}:
		return nil
	case <-p.done:
		return ErrPipeClosed
	}
}

// CloseSend marks the producer finished. A non-nil err is delivered to the
// consumer after the chunks already queued — the consumer sees every group
// that became durable, then the failure. CloseSend is idempotent; only the
// first call's error is kept.
func (p *TailPipe) CloseSend(err error) {
	p.mu.Lock()
	if !p.sendClosed {
		p.sendClosed = true
		p.err = err
		close(p.ch)
	}
	p.mu.Unlock()
}

// sendErr returns the error CloseSend recorded, if any.
func (p *TailPipe) sendErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// closeRecv signals that the consumer is gone, releasing blocked producers.
func (p *TailPipe) closeRecv() { p.doneOnce.Do(func() { close(p.done) }) }

// TailSource reads a file's records through a TailPipe while the file is
// still being written: each chunk received is fetched as one BatchRead —
// the same call, over the same group boundaries, a striped reader of the
// writer's width would issue over the finished file, so counted I/Os are
// identical to reading after the fact. With async read-ahead it keeps the
// next already-announced chunk in flight behind the one being consumed
// (2×width frames, the PrefetchReader trade); it never blocks waiting for a
// chunk just to prefetch it, so read-ahead rides exactly as far ahead as
// the producer has durably written.
type TailSource[T any] struct {
	vol   *pdm.Volume
	codec record.Codec[T]
	pipe  *TailPipe
	per   int

	frames []*pdm.Frame // width, or 2*width with read-ahead
	cur    []*pdm.Frame // group being consumed
	next   []*pdm.Frame // read-ahead group; nil when synchronous
	join   func() error // in-flight read-ahead; nil when none
	ahead  TailChunk    // chunk the in-flight read covers

	width  int
	avail  int // records decoded so far in cur
	pos    int
	closed bool
}

// NewTailSource creates the consumer half of a pipe over vol. width must be
// at least the producing writer's width — chunks are read one BatchRead
// each. async adds a second frame group for opportunistic read-ahead.
func NewTailSource[T any](vol *pdm.Volume, codec record.Codec[T], pool *pdm.Pool, pipe *TailPipe, width int, async bool) (*TailSource[T], error) {
	if width < 1 {
		return nil, fmt.Errorf("stream: tail source width must be >= 1, got %d", width)
	}
	n := width
	if async {
		n = 2 * width
	}
	frames, err := pool.AllocN(n)
	if err != nil {
		return nil, err
	}
	r := &TailSource[T]{
		vol:    vol,
		codec:  codec,
		pipe:   pipe,
		per:    vol.BlockBytes() / codec.Size(),
		frames: frames,
		cur:    frames[:width],
		width:  width,
	}
	if async {
		r.next = frames[width:]
	}
	return r, nil
}

// read fetches one chunk into the given frame group synchronously.
func (r *TailSource[T]) read(c TailChunk, group []*pdm.Frame) error {
	bufs := make([][]byte, len(c.Addrs))
	for i := range bufs {
		bufs[i] = group[i].Buf
	}
	return r.vol.BatchRead(c.Addrs, bufs)
}

// launch dispatches an async read of the next chunk, if one is already
// durable, into the spare group.
func (r *TailSource[T]) launch() {
	select {
	case c, ok := <-r.pipe.ch:
		if !ok || c.Recs == 0 {
			// Channel closed (or an empty sentinel): nothing to prefetch;
			// fill rediscovers the close on its next receive.
			return
		}
		if len(c.Addrs) > r.width {
			// Oversized chunk: surface the error at join time.
			r.ahead = c
			r.join = func() error {
				return fmt.Errorf("stream: tail chunk of %d blocks exceeds source width %d", len(c.Addrs), r.width)
			}
			return
		}
		bufs := make([][]byte, len(c.Addrs))
		for i := range bufs {
			bufs[i] = r.next[i].Buf
		}
		r.ahead = c
		r.join = r.vol.BatchReadAsync(c.Addrs, bufs)
	default:
	}
}

// fill makes the next chunk's records available in cur: the in-flight
// read-ahead if there is one, otherwise a blocking receive. ok is false
// when the producer has finished and every chunk is consumed.
func (r *TailSource[T]) fill() (ok bool, err error) {
	if r.join != nil {
		err := r.join()
		r.join = nil
		if err != nil {
			return false, err
		}
		r.cur, r.next = r.next, r.cur
		r.avail, r.pos = r.ahead.Recs, 0
		r.launch()
		return true, nil
	}
	c, chOk := <-r.pipe.ch
	if !chOk {
		return false, r.pipe.sendErr()
	}
	if len(c.Addrs) > r.width {
		return false, fmt.Errorf("stream: tail chunk of %d blocks exceeds source width %d", len(c.Addrs), r.width)
	}
	if err := r.read(c, r.cur); err != nil {
		return false, err
	}
	r.avail, r.pos = c.Recs, 0
	if r.next != nil {
		r.launch()
	}
	return true, nil
}

// Next returns the next record; ok is false once the producer has closed
// the pipe and every durable record has been returned. If the producer
// failed, the error arrives here after the records that preceded it.
func (r *TailSource[T]) Next() (v T, ok bool, err error) {
	if r.closed {
		return v, false, ErrClosed
	}
	for r.pos == r.avail {
		ok, err := r.fill()
		if err != nil {
			return v, false, err
		}
		if !ok {
			return v, false, nil
		}
	}
	frame := r.cur[r.pos/r.per]
	off := (r.pos % r.per) * r.codec.Size()
	v = r.codec.Decode(frame.Buf[off:])
	r.pos++
	return v, true, nil
}

// Close releases the source's frames and its end of the pipe, unblocking a
// producer mid-Notify. Safe to call whether or not the stream was drained.
func (r *TailSource[T]) Close() {
	if r.closed {
		return
	}
	r.closed = true
	r.pipe.closeRecv()
	if r.join != nil {
		r.join() // the engine reads into our frames until the join returns
		r.join = nil
	}
	pdm.ReleaseAll(r.frames)
	r.frames = nil
}

// TailSource is a Source like any other reader.
var _ Source[int] = (*TailSource[int])(nil)
