package stream

import (
	"errors"
	"sync"
	"testing"
	"time"

	"em/internal/pdm"
	"em/internal/record"
)

// pipeRecs produces n distinct records.
func pipeRecs(n int) []record.Record {
	vs := make([]record.Record, n)
	for i := range vs {
		vs[i] = record.Record{Key: uint64(i + 1), Val: uint64(i * 3)}
	}
	return vs
}

// TestTailPipeRoundTrip streams a file through a notifying writer into a
// TailSource running concurrently and asserts the consumer sees every
// record in order, at exactly the counted I/Os of writing the file and then
// scanning it with a striped reader — the pipeline adds overlap, not
// transfers. Swept over widths, sync and async on both ends, and both
// backends.
func TestTailPipeRoundTrip(t *testing.T) {
	cfg := pdm.Config{BlockBytes: 64, MemBlocks: 24, Disks: 4, DiskLatency: 20 * time.Microsecond}
	in := pipeRecs(999)
	for _, width := range []int{1, 3} {
		for _, async := range []bool{false, true} {
			forEachBackend(t, cfg, func(t *testing.T, vol *pdm.Volume, pool *pdm.Pool) {
				pipe := NewTailPipe(2)
				src, err := NewTailSource[record.Record](vol, record.RecordCodec{}, pool, pipe, width, async)
				if err != nil {
					t.Fatal(err)
				}
				f := NewFile[record.Record](vol, record.RecordCodec{})
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					w, err := OpenSinkNotify(f, pool, width, async, pipe.Notify)
					if err != nil {
						pipe.CloseSend(err)
						return
					}
					for _, r := range in {
						if err := w.Append(r); err != nil {
							w.Close()
							pipe.CloseSend(err)
							return
						}
					}
					pipe.CloseSend(w.Close())
				}()
				var got []record.Record
				if err := Drain[record.Record](src, func(v record.Record) error {
					got = append(got, v)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				src.Close()
				wg.Wait()
				if len(got) != len(in) {
					t.Fatalf("w=%d async=%v: got %d records, want %d", width, async, len(got), len(in))
				}
				for i := range in {
					if got[i] != in[i] {
						t.Fatalf("w=%d async=%v: record %d differs", width, async, i)
					}
				}
				pipelined := vol.Stats().Snapshot()

				// Reference: write the same file, then scan it striped.
				vol.Stats().Reset()
				f2, err := FromSliceWidth(vol, pool, record.RecordCodec{}, in, width)
				if err != nil {
					t.Fatal(err)
				}
				r, err := NewStripedReader(f2, pool, width)
				if err != nil {
					t.Fatal(err)
				}
				if err := Drain[record.Record](r, func(record.Record) error { return nil }); err != nil {
					t.Fatal(err)
				}
				r.Close()
				seq := vol.Stats().Snapshot()
				if pipelined.Reads != seq.Reads || pipelined.Writes != seq.Writes {
					t.Fatalf("w=%d async=%v: pipelined I/Os (r=%d w=%d) != sequential (r=%d w=%d)",
						width, async, pipelined.Reads, pipelined.Writes, seq.Reads, seq.Writes)
				}
				if pool.InUse() != 0 {
					t.Fatalf("leaked %d frames", pool.InUse())
				}
			})
		}
	}
}

// FromSliceWidth materialises vs with a width-w striped writer, so flush
// group boundaries match a notifying width-w producer's.
func FromSliceWidth[T any](vol *pdm.Volume, pool *pdm.Pool, codec record.Codec[T], vs []T, width int) (*File[T], error) {
	f := NewFile[T](vol, codec)
	w, err := NewStripedWriter(f, pool, width)
	if err != nil {
		return nil, err
	}
	for _, v := range vs {
		if err := w.Append(v); err != nil {
			w.Close()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return f, nil
}

// TestTailPipeProducerError delivers a mid-stream producer failure to the
// consumer after the records that preceded it.
func TestTailPipeProducerError(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 16, Disks: 1})
	pool := pdm.PoolFor(vol)
	boom := errors.New("producer exploded")
	pipe := NewTailPipe(4)
	src, err := NewTailSource[record.Record](vol, record.RecordCodec{}, pool, pipe, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	in := pipeRecs(12) // 3 blocks of 4 records
	f := NewFile[record.Record](vol, record.RecordCodec{})
	w, err := OpenSinkNotify(f, pool, 1, false, pipe.Notify)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range in[:8] {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pipe.CloseSend(boom)

	n := 0
	err = Drain[record.Record](src, func(v record.Record) error {
		if v != in[n] {
			t.Fatalf("record %d differs", n)
		}
		n++
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("consumer error = %v, want the producer's", err)
	}
	if n != 8 {
		t.Fatalf("consumer saw %d records before the error, want 8", n)
	}
	src.Close()
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

// TestTailPipeConsumerAbort unblocks a producer stuck in Notify when the
// consumer goes away, handing it ErrPipeClosed so it can unwind.
func TestTailPipeConsumerAbort(t *testing.T) {
	pipe := NewTailPipe(1)
	if err := pipe.Notify([]int64{0}, 4); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		got <- pipe.Notify([]int64{1}, 4) // pipe full: blocks until abort
	}()
	select {
	case err := <-got:
		t.Fatalf("notify returned %v before consumer closed", err)
	case <-time.After(10 * time.Millisecond):
	}
	pipe.closeRecv()
	select {
	case err := <-got:
		if !errors.Is(err, ErrPipeClosed) {
			t.Fatalf("notify error = %v, want ErrPipeClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("notify still blocked after consumer closed")
	}
}
