// Asynchronous prefetching and write-behind over pdm volumes.
//
// The survey's D-disk merging bound rests on forecasting: because a sorted
// run is consumed strictly in order, the next block a reader will need is
// known in advance, so it can be fetched while the CPU (and the other disks)
// are busy. PrefetchReader realises exactly that read-ahead: it keeps its
// next block group permanently in flight on a background goroutine, double
// buffering against the group being consumed. AsyncWriter is the write-side
// dual — write-behind — flushing the previous block group while the caller
// fills the next.
//
// Both draw every buffer from the caller's pdm.Pool (a width-w asynchronous
// stream holds 2w frames instead of w), so the memory budget M still holds,
// and both issue exactly the same BatchRead/BatchWrite calls as their
// synchronous counterparts, so all I/O counters are identical — only the
// wall-clock overlap changes.
//
// Consumers are written against the Source/Sink interfaces (see stream.go),
// so every sequential pass in the sort/index stack — merge sort's run readers
// and writers, distribution sort's splitter sampling and bucket writers, and
// the B-tree bulk loader's input — can switch between the synchronous and
// forecasting implementations with an option rather than a rewrite.
package stream

import (
	"fmt"

	"em/internal/pdm"
)

// The four stream implementations are interchangeable behind Source/Sink.
var (
	_ Source[int] = (*Reader[int])(nil)
	_ Source[int] = (*PrefetchReader[int])(nil)
	_ Sink[int]   = (*Writer[int])(nil)
	_ Sink[int]   = (*AsyncWriter[int])(nil)
)

// PrefetchReader iterates a File's records in order like Reader, but always
// keeps the next group of width blocks in flight via Volume.BatchReadAsync.
// It holds 2*width pool frames: one group being consumed, one being
// prefetched. Its sequence of BatchRead calls — and therefore every Stats
// counter — is identical to a synchronous width-w Reader's.
type PrefetchReader[T any] struct {
	f        *File[T]
	pool     *pdm.Pool
	width    int
	cur      []*pdm.Frame // group being consumed
	next     []*pdm.Frame // group being prefetched
	join     func() error // in-flight fetch; nil when none
	inFlight int          // blocks the in-flight fetch covers
	block    int          // index of next block to prefetch
	avail    int          // records available in cur
	pos      int          // next record offset within cur
	read     int64        // records returned so far
	closed   bool
}

// NewPrefetchReader creates an asynchronous reader over f that fetches width
// blocks per parallel batch and keeps the following batch in flight.
func NewPrefetchReader[T any](f *File[T], pool *pdm.Pool, width int) (*PrefetchReader[T], error) {
	if width < 1 {
		return nil, fmt.Errorf("stream: reader width must be >= 1, got %d", width)
	}
	frames, err := pool.AllocN(2 * width)
	if err != nil {
		return nil, err
	}
	r := &PrefetchReader[T]{
		f:     f,
		pool:  pool,
		width: width,
		cur:   frames[:width],
		next:  frames[width:],
	}
	r.launch()
	return r, nil
}

// launch dispatches the next block group's fetch into r.next, if any blocks
// remain. It must only be called when no fetch is in flight. The dispatch
// happens on the caller's goroutine, so the disks' service-time reservations
// begin immediately; only the join can block.
func (r *PrefetchReader[T]) launch() {
	want := r.width
	if rem := len(r.f.blocks) - r.block; rem < want {
		want = rem
	}
	if want <= 0 {
		return
	}
	addrs := make([]int64, want)
	bufs := make([][]byte, want)
	for i := 0; i < want; i++ {
		addrs[i] = r.f.blocks[r.block+i]
		bufs[i] = r.next[i].Buf
	}
	r.block += want
	r.inFlight = want
	r.join = r.f.vol.BatchReadAsync(addrs, bufs)
}

// fill joins the in-flight fetch, promotes it to the consumable group, and
// immediately launches the next prefetch.
func (r *PrefetchReader[T]) fill() error {
	if r.join == nil {
		return fmt.Errorf("stream: read past end of file blocks")
	}
	err := r.join()
	r.join = nil
	if err != nil {
		return err
	}
	r.cur, r.next = r.next, r.cur
	r.avail = r.inFlight * r.f.PerBlock()
	r.pos = 0
	r.launch()
	return nil
}

// Next returns the next record. ok is false at end of file.
func (r *PrefetchReader[T]) Next() (v T, ok bool, err error) {
	if r.closed {
		return v, false, ErrClosed
	}
	if r.read >= r.f.n {
		return v, false, nil
	}
	if r.pos == r.avail {
		if err := r.fill(); err != nil {
			return v, false, err
		}
	}
	per := r.f.PerBlock()
	frame := r.cur[r.pos/per]
	off := (r.pos % per) * r.f.codec.Size()
	v = r.f.codec.Decode(frame.Buf[off:])
	r.pos++
	r.read++
	return v, true, nil
}

// Remaining returns the number of records not yet returned.
func (r *PrefetchReader[T]) Remaining() int64 { return r.f.n - r.read }

// Close joins any in-flight fetch and releases the reader's frames.
func (r *PrefetchReader[T]) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if r.join != nil {
		r.join() // the engine writes into our frames until the join returns
		r.join = nil
	}
	pdm.ReleaseAll(r.cur)
	pdm.ReleaseAll(r.next)
	r.cur, r.next = nil, nil
}

// AsyncWriter appends records to a File like Writer, but flushes each full
// group of width blocks via Volume.BatchWriteAsync while the caller fills
// the next group — double-buffered write-behind. It holds 2*width pool frames.
// Its sequence of BatchWrite calls matches a synchronous width-w Writer's,
// so all Stats counters are identical.
type AsyncWriter[T any] struct {
	f        *File[T]
	pool     *pdm.Pool
	width    int
	cur      []*pdm.Frame // group being filled
	flushing []*pdm.Frame // group being written behind
	join     func() error // in-flight flush; nil when none
	filled   int          // records buffered in cur
	closed   bool

	onFlush     FlushFunc // durable-progress observer; nil for plain writers
	pendingAddr []int64   // addresses of the in-flight group, for onFlush
	pendingRecs int       // records the in-flight group carries
}

// NewAsyncWriter creates a write-behind writer appending to f in batches of
// width blocks.
func NewAsyncWriter[T any](f *File[T], pool *pdm.Pool, width int) (*AsyncWriter[T], error) {
	if width < 1 {
		return nil, fmt.Errorf("stream: writer width must be >= 1, got %d", width)
	}
	frames, err := pool.AllocN(2 * width)
	if err != nil {
		return nil, err
	}
	w := &AsyncWriter[T]{
		f:        f,
		pool:     pool,
		width:    width,
		cur:      frames[:width],
		flushing: frames[width:],
	}
	tail, err := f.reloadTail(w.cur[0].Buf)
	if err != nil {
		pdm.ReleaseAll(frames)
		return nil, err
	}
	w.filled = tail
	return w, nil
}

// joinFlush waits for the in-flight flush, if any, and reports its error.
// Once the join returns clean the group is durable, so this is also the
// point where the flush observer learns about it.
func (w *AsyncWriter[T]) joinFlush() error {
	if w.join == nil {
		return nil
	}
	err := w.join()
	w.join = nil
	if err != nil {
		return err
	}
	if w.onFlush != nil && w.pendingAddr != nil {
		err = w.onFlush(w.pendingAddr, w.pendingRecs)
	}
	w.pendingAddr = nil
	return err
}

// dispatch allocates addresses for the current full group and hands the
// BatchWrite to the volume's async engine. Block addresses are allocated
// and recorded in file order on the caller's goroutine, so the file layout
// is identical to the synchronous writer's.
func (w *AsyncWriter[T]) dispatch() error {
	if err := w.joinFlush(); err != nil {
		return err
	}
	addrs, bufs := w.f.allocExtent(w.width, w.cur)
	w.pendingAddr, w.pendingRecs = addrs, w.filled
	w.cur, w.flushing = w.flushing, w.cur
	w.filled = 0
	w.join = w.f.vol.BatchWriteAsync(addrs, bufs)
	return nil
}

// Append adds one record to the file.
func (w *AsyncWriter[T]) Append(v T) error {
	if w.closed {
		return ErrClosed
	}
	per := w.f.PerBlock()
	if w.filled == per*w.width {
		if err := w.dispatch(); err != nil {
			return err
		}
	}
	frame := w.cur[w.filled/per]
	off := (w.filled % per) * w.f.codec.Size()
	w.f.codec.Encode(frame.Buf[off:], v)
	w.filled++
	w.f.n++
	return nil
}

// Close joins the in-flight flush, writes any partial tail group
// synchronously, and releases the writer's frames.
func (w *AsyncWriter[T]) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.joinFlush()
	if err == nil && w.filled > 0 {
		per := w.f.PerBlock()
		full := (w.filled + per - 1) / per
		addrs, bufs := w.f.allocExtent(full, w.cur)
		err = w.f.vol.BatchWrite(addrs, bufs)
		if err == nil && w.onFlush != nil {
			err = w.onFlush(addrs, w.filled)
		}
	}
	pdm.ReleaseAll(w.cur)
	pdm.ReleaseAll(w.flushing)
	w.cur, w.flushing = nil, nil
	return err
}

// AsyncForEach streams every record of f through fn using a width-w
// prefetching reader, overlapping each block fetch with fn's processing of
// the previous group. With width 1 its I/O counters are identical to
// ForEach's.
func AsyncForEach[T any](f *File[T], pool *pdm.Pool, width int, fn func(T) error) error {
	r, err := NewPrefetchReader(f, pool, width)
	if err != nil {
		return err
	}
	defer r.Close()
	return Drain[T](r, fn)
}
