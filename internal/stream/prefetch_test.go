package stream

import (
	"testing"
	"testing/quick"
	"time"

	"em/internal/pdm"
	"em/internal/record"
)

func asyncTestVol(latency time.Duration) (*pdm.Volume, *pdm.Pool) {
	v := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 32, Disks: 4, DiskLatency: latency})
	return v, pdm.PoolFor(v)
}

func genRecords(n int) []record.Record {
	vs := make([]record.Record, n)
	for i := range vs {
		vs[i] = record.Record{Key: uint64(i*2654435761) % 1009, Val: uint64(i)}
	}
	return vs
}

// TestPrefetchReaderMatchesReader checks that a prefetching scan returns the
// same records as a synchronous scan and charges identical I/O counts.
func TestPrefetchReaderMatchesReader(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 17, 64, 257} {
		for _, width := range []int{1, 2, 4} {
			vol, pool := asyncTestVol(0)
			vs := genRecords(n)
			f, err := FromSlice(vol, pool, record.RecordCodec{}, vs)
			if err != nil {
				t.Fatal(err)
			}
			vol.Stats().Reset()
			sr, err := NewStripedReader(f, pool, width)
			if err != nil {
				t.Fatal(err)
			}
			var syncOut []record.Record
			for {
				v, ok, err := sr.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				syncOut = append(syncOut, v)
			}
			sr.Close()
			syncStats := vol.Stats().Snapshot()

			vol.Stats().Reset()
			pr, err := NewPrefetchReader(f, pool, width)
			if err != nil {
				t.Fatal(err)
			}
			var asyncOut []record.Record
			for {
				v, ok, err := pr.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				asyncOut = append(asyncOut, v)
			}
			pr.Close()
			asyncStats := vol.Stats().Snapshot()

			if len(syncOut) != len(asyncOut) {
				t.Fatalf("n=%d w=%d: lengths %d vs %d", n, width, len(syncOut), len(asyncOut))
			}
			for i := range syncOut {
				if syncOut[i] != asyncOut[i] {
					t.Fatalf("n=%d w=%d: record %d differs", n, width, i)
				}
			}
			if syncStats.Reads != asyncStats.Reads || syncStats.Steps != asyncStats.Steps {
				t.Fatalf("n=%d w=%d: stats differ: sync reads=%d steps=%d, async reads=%d steps=%d",
					n, width, syncStats.Reads, syncStats.Steps, asyncStats.Reads, asyncStats.Steps)
			}
			if pool.InUse() != 0 {
				t.Fatalf("n=%d w=%d: leaked %d frames", n, width, pool.InUse())
			}
		}
	}
}

// TestAsyncWriterMatchesWriter checks that write-behind produces a
// byte-identical file (same records, same block layout) at identical I/O
// cost.
func TestAsyncWriterMatchesWriter(t *testing.T) {
	for _, n := range []int{0, 1, 4, 15, 16, 63, 200} {
		for _, width := range []int{1, 2, 4} {
			vs := genRecords(n)

			svol, spool := asyncTestVol(0)
			sf := NewFile[record.Record](svol, record.RecordCodec{})
			sw, err := NewStripedWriter(sf, spool, width)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vs {
				if err := sw.Append(v); err != nil {
					t.Fatal(err)
				}
			}
			if err := sw.Close(); err != nil {
				t.Fatal(err)
			}

			avol, apool := asyncTestVol(0)
			af := NewFile[record.Record](avol, record.RecordCodec{})
			aw, err := NewAsyncWriter(af, apool, width)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vs {
				if err := aw.Append(v); err != nil {
					t.Fatal(err)
				}
			}
			if err := aw.Close(); err != nil {
				t.Fatal(err)
			}

			ss, as := svol.Stats().Snapshot(), avol.Stats().Snapshot()
			if ss.Writes != as.Writes || ss.Steps != as.Steps {
				t.Fatalf("n=%d w=%d: writes %d/%d steps %d/%d", n, width, ss.Writes, as.Writes, ss.Steps, as.Steps)
			}
			sb, ab := BlockAddrs(sf), BlockAddrs(af)
			if len(sb) != len(ab) {
				t.Fatalf("n=%d w=%d: block counts %d vs %d", n, width, len(sb), len(ab))
			}
			for i := range sb {
				if sb[i] != ab[i] {
					t.Fatalf("n=%d w=%d: block %d at addr %d vs %d", n, width, i, sb[i], ab[i])
				}
			}
			got, err := ToSlice(af, apool)
			if err != nil {
				t.Fatal(err)
			}
			for i := range vs {
				if got[i] != vs[i] {
					t.Fatalf("n=%d w=%d: record %d differs", n, width, i)
				}
			}
			if apool.InUse() != 0 {
				t.Fatalf("n=%d w=%d: leaked %d frames", n, width, apool.InUse())
			}
		}
	}
}

// TestAsyncRoundTripQuick is the quick-check property: for arbitrary record
// payloads, an async write followed by an async read returns exactly the
// input, with the same block counts a synchronous round trip charges, on a
// latency volume exercising the worker engine.
func TestAsyncRoundTripQuick(t *testing.T) {
	f := func(keys []uint64) bool {
		if len(keys) > 512 {
			keys = keys[:512]
		}
		vs := make([]record.Record, len(keys))
		for i, k := range keys {
			vs[i] = record.Record{Key: k, Val: uint64(i)}
		}

		// Synchronous reference.
		svol, spool := asyncTestVol(0)
		sf, err := FromSlice(svol, spool, record.RecordCodec{}, vs)
		if err != nil {
			return false
		}
		sback, err := ToSlice(sf, spool)
		if err != nil {
			return false
		}
		sstats := svol.Stats().Snapshot()

		// Async path on a worker-engine volume.
		avol, apool := asyncTestVol(5 * time.Microsecond)
		defer avol.Close()
		af := NewFile[record.Record](avol, record.RecordCodec{})
		aw, err := NewAsyncWriter(af, apool, 1)
		if err != nil {
			return false
		}
		for _, v := range vs {
			if err := aw.Append(v); err != nil {
				return false
			}
		}
		if err := aw.Close(); err != nil {
			return false
		}
		var aback []record.Record
		if err := AsyncForEach(af, apool, 1, func(v record.Record) error {
			aback = append(aback, v)
			return nil
		}); err != nil {
			return false
		}
		astats := avol.Stats().Snapshot()

		if len(sback) != len(aback) || len(sback) != len(vs) {
			return false
		}
		for i := range sback {
			if sback[i] != aback[i] || sback[i] != vs[i] {
				return false
			}
		}
		return sstats.Reads == astats.Reads && sstats.Writes == astats.Writes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncWriterAppendToPartialTail checks the reload-partial-block path
// matches the synchronous writer.
func TestAsyncWriterAppendToPartialTail(t *testing.T) {
	vol, pool := asyncTestVol(0)
	vs := genRecords(10) // 64-byte blocks, 16-byte records: 2.5 blocks
	f, err := FromSlice(vol, pool, record.RecordCodec{}, vs[:10])
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewAsyncWriter(f, pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	extra := genRecords(7)
	for _, v := range extra {
		if err := w.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ToSlice(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]record.Record{}, vs[:10]...), extra...)
	if len(got) != len(want) {
		t.Fatalf("len %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}
