// Package stream provides block-oriented sequential files, readers, and
// writers over a pdm.Volume.
//
// A File is an ordered sequence of records packed into whole blocks. Readers
// and writers move data strictly in block units and draw their buffers from
// a pdm.Pool, so every transfer is visible in the volume's I/O counters and
// every buffer counts against the memory budget M.
//
// Readers and writers may be striped: a width-w reader fetches w consecutive
// blocks as one parallel batch, which is exactly the disk-striping technique
// the survey analyses (Scan speeds up by a factor of D; Sort pays a reduced
// merge arity).
package stream

import (
	"errors"
	"fmt"

	"em/internal/pdm"
	"em/internal/record"
)

// ErrClosed reports use of a closed reader or writer.
var ErrClosed = errors.New("stream: closed")

// Source is the record-producing side shared by synchronous (Reader) and
// forecasting (PrefetchReader) readers, so algorithms can consume a stream
// without knowing whether its next block group is fetched on demand or kept
// in flight.
type Source[T any] interface {
	Next() (v T, ok bool, err error)
	Close()
}

// Sink is the record-consuming side shared by synchronous (Writer) and
// write-behind (AsyncWriter) writers.
type Sink[T any] interface {
	Append(v T) error
	Close() error
}

// OpenSource opens a width-w reader over f: striped (fetch on demand) when
// async is false, forecasting (next group kept in flight, 2×width frames)
// when true. It is the single sync-vs-async dispatch point shared by the
// sort and index layers.
func OpenSource[T any](f *File[T], pool *pdm.Pool, width int, async bool) (Source[T], error) {
	if async {
		return NewPrefetchReader(f, pool, width)
	}
	return NewStripedReader(f, pool, width)
}

// OpenSink opens a width-w writer appending to f: striped when async is
// false, write-behind when true.
func OpenSink[T any](f *File[T], pool *pdm.Pool, width int, async bool) (Sink[T], error) {
	return OpenSinkNotify(f, pool, width, async, nil)
}

// FlushFunc observes a writer's durable progress: it is called with the
// block addresses of each flushed group and the number of records buffered
// when the group was cut, strictly in file order, only after the blocks are
// safely on the volume (for a write-behind writer, after the group's join).
// A non-nil error aborts the writer's current operation, which is how a
// pipeline consumer that has gone away stops its producer. See TailPipe.
type FlushFunc func(addrs []int64, recs int) error

// OpenSinkNotify is OpenSink with a flush observer, the producer half of a
// sort→consumer pipeline: fn learns, group by group, which prefix of f is
// durable and may be read back. A nil fn is exactly OpenSink. It is meant
// for writers that start on an empty file; with a partially filled file the
// first notification would also cover the reloaded tail records.
func OpenSinkNotify[T any](f *File[T], pool *pdm.Pool, width int, async bool, fn FlushFunc) (Sink[T], error) {
	if async {
		w, err := NewAsyncWriter(f, pool, width)
		if err != nil {
			return nil, err
		}
		w.onFlush = fn
		return w, nil
	}
	w, err := NewStripedWriter(f, pool, width)
	if err != nil {
		return nil, err
	}
	w.onFlush = fn
	return w, nil
}

// File is a sequence of N records of type T stored in whole blocks on a
// volume. The block list is catalog metadata (held in memory, as a real
// system holds extent maps); record data lives only on the volume.
type File[T any] struct {
	vol    *pdm.Volume
	codec  record.Codec[T]
	blocks []int64
	n      int64
}

// NewFile creates an empty file on vol.
func NewFile[T any](vol *pdm.Volume, codec record.Codec[T]) *File[T] {
	return &File[T]{vol: vol, codec: codec}
}

// Vol returns the underlying volume.
func (f *File[T]) Vol() *pdm.Volume { return f.vol }

// Codec returns the file's record codec.
func (f *File[T]) Codec() record.Codec[T] { return f.codec }

// Len returns the number of records in the file.
func (f *File[T]) Len() int64 { return f.n }

// Blocks returns the number of blocks occupied.
func (f *File[T]) Blocks() int { return len(f.blocks) }

// PerBlock returns the number of records that fit in one block (the model's
// B, in records).
func (f *File[T]) PerBlock() int { return f.vol.BlockBytes() / f.codec.Size() }

// Release returns every block of the file to the volume's free list and
// empties the file.
func (f *File[T]) Release() {
	for _, b := range f.blocks {
		f.vol.Free(b)
	}
	f.blocks = f.blocks[:0]
	f.n = 0
}

// reloadTail prepares a writer for appending to a file whose last block is
// partially filled: it reads that block into buf, removes it from the block
// list, frees its address, and returns the number of records it held, so
// the writer can keep packing it and records stay contiguous for readers.
// A block-aligned file returns 0 and touches nothing.
func (f *File[T]) reloadTail(buf []byte) (int, error) {
	tail := int(f.n % int64(f.PerBlock()))
	if tail == 0 {
		return 0, nil
	}
	last := f.blocks[len(f.blocks)-1]
	if err := f.vol.ReadBlock(last, buf); err != nil {
		return 0, err
	}
	f.blocks = f.blocks[:len(f.blocks)-1]
	f.vol.Free(last)
	return tail, nil
}

// allocExtent reserves n fresh contiguous blocks, records them in the
// file's block list in order, and returns their addresses paired with the
// first n frames' buffers — the shared layout step of every writer flush,
// synchronous or write-behind, which keeps their on-volume layouts
// byte-identical.
func (f *File[T]) allocExtent(n int, frames []*pdm.Frame) (addrs []int64, bufs [][]byte) {
	base := f.vol.Alloc(n)
	addrs = make([]int64, n)
	bufs = make([][]byte, n)
	for i := 0; i < n; i++ {
		addrs[i] = base + int64(i)
		bufs[i] = frames[i].Buf
		f.blocks = append(f.blocks, addrs[i])
	}
	return addrs, bufs
}

// Writer appends records to a File block by block. A width-w writer buffers
// w blocks and flushes them as one parallel batch.
type Writer[T any] struct {
	f       *File[T]
	pool    *pdm.Pool
	frames  []*pdm.Frame
	width   int
	filled  int // records buffered across frames
	closed  bool
	onFlush FlushFunc // durable-progress observer; nil for plain writers
}

// NewWriter creates a width-1 writer (one buffer frame).
func NewWriter[T any](f *File[T], pool *pdm.Pool) (*Writer[T], error) {
	return NewStripedWriter(f, pool, 1)
}

// NewStripedWriter creates a writer that buffers width blocks and writes
// them as single parallel batches. width is typically the volume's disk
// count D.
func NewStripedWriter[T any](f *File[T], pool *pdm.Pool, width int) (*Writer[T], error) {
	if width < 1 {
		return nil, fmt.Errorf("stream: writer width must be >= 1, got %d", width)
	}
	frames, err := pool.AllocN(width)
	if err != nil {
		return nil, err
	}
	w := &Writer[T]{f: f, pool: pool, frames: frames, width: width}
	tail, err := f.reloadTail(frames[0].Buf)
	if err != nil {
		pdm.ReleaseAll(frames)
		return nil, err
	}
	w.filled = tail
	return w, nil
}

// Append adds one record to the file.
func (w *Writer[T]) Append(v T) error {
	if w.closed {
		return ErrClosed
	}
	per := w.f.PerBlock()
	cap := per * w.width
	if w.filled == cap {
		if err := w.flush(w.width); err != nil {
			return err
		}
	}
	frame := w.frames[w.filled/per]
	off := (w.filled % per) * w.f.codec.Size()
	w.f.codec.Encode(frame.Buf[off:], v)
	w.filled++
	w.f.n++
	return nil
}

// flush writes the first nFrames buffered frames to freshly allocated blocks.
func (w *Writer[T]) flush(nFrames int) error {
	if nFrames == 0 {
		return nil
	}
	addrs, bufs := w.f.allocExtent(nFrames, w.frames)
	if err := w.f.vol.BatchWrite(addrs, bufs); err != nil {
		return err
	}
	recs := w.filled
	w.filled = 0
	if w.onFlush != nil {
		return w.onFlush(addrs, recs)
	}
	return nil
}

// Close flushes any partial buffer and releases the writer's frames. The
// final block may be partially filled; File.Len records the true count.
func (w *Writer[T]) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	per := w.f.PerBlock()
	full := (w.filled + per - 1) / per
	err := w.flush(full)
	pdm.ReleaseAll(w.frames)
	w.frames = nil
	return err
}

// Reader iterates a File's records in order. A width-w reader prefetches w
// blocks per parallel batch.
type Reader[T any] struct {
	f      *File[T]
	pool   *pdm.Pool
	frames []*pdm.Frame
	width  int
	block  int   // index of next block to fetch
	avail  int   // records available in the buffered frames
	pos    int   // next record offset within buffered frames
	read   int64 // records returned so far
	closed bool
}

// NewReader creates a width-1 reader over f.
func NewReader[T any](f *File[T], pool *pdm.Pool) (*Reader[T], error) {
	return NewStripedReader(f, pool, 1)
}

// NewStripedReader creates a reader that fetches width blocks per parallel
// batch.
func NewStripedReader[T any](f *File[T], pool *pdm.Pool, width int) (*Reader[T], error) {
	if width < 1 {
		return nil, fmt.Errorf("stream: reader width must be >= 1, got %d", width)
	}
	frames, err := pool.AllocN(width)
	if err != nil {
		return nil, err
	}
	return &Reader[T]{f: f, pool: pool, frames: frames, width: width}, nil
}

// Next returns the next record. ok is false at end of file.
func (r *Reader[T]) Next() (v T, ok bool, err error) {
	if r.closed {
		return v, false, ErrClosed
	}
	if r.read >= r.f.n {
		return v, false, nil
	}
	if r.pos == r.avail {
		if err := r.fill(); err != nil {
			return v, false, err
		}
	}
	per := r.f.PerBlock()
	frame := r.frames[r.pos/per]
	off := (r.pos % per) * r.f.codec.Size()
	v = r.f.codec.Decode(frame.Buf[off:])
	r.pos++
	r.read++
	return v, true, nil
}

// fill fetches the next batch of blocks.
func (r *Reader[T]) fill() error {
	want := r.width
	if rem := len(r.f.blocks) - r.block; rem < want {
		want = rem
	}
	if want <= 0 {
		return fmt.Errorf("stream: read past end of file blocks")
	}
	addrs := make([]int64, want)
	bufs := make([][]byte, want)
	for i := 0; i < want; i++ {
		addrs[i] = r.f.blocks[r.block+i]
		bufs[i] = r.frames[i].Buf
	}
	if err := r.f.vol.BatchRead(addrs, bufs); err != nil {
		return err
	}
	r.block += want
	r.avail = want * r.f.PerBlock()
	r.pos = 0
	return nil
}

// Peek returns the next record without consuming it.
func (r *Reader[T]) Peek() (v T, ok bool, err error) {
	if r.closed {
		return v, false, ErrClosed
	}
	if r.read >= r.f.n {
		return v, false, nil
	}
	if r.pos == r.avail {
		if err := r.fill(); err != nil {
			return v, false, err
		}
	}
	per := r.f.PerBlock()
	frame := r.frames[r.pos/per]
	off := (r.pos % per) * r.f.codec.Size()
	return r.f.codec.Decode(frame.Buf[off:]), true, nil
}

// Remaining returns the number of records not yet returned.
func (r *Reader[T]) Remaining() int64 { return r.f.n - r.read }

// Close releases the reader's frames.
func (r *Reader[T]) Close() {
	if r.closed {
		return
	}
	r.closed = true
	pdm.ReleaseAll(r.frames)
	r.frames = nil
}

// Drain feeds every remaining record of src to fn, stopping on the first
// error. It does not close src.
func Drain[T any](src Source[T], fn func(T) error) error {
	for {
		v, ok, err := src.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(v); err != nil {
			return err
		}
	}
}

// ForEach streams every record of f through fn using a width-1 reader.
func ForEach[T any](f *File[T], pool *pdm.Pool, fn func(T) error) error {
	r, err := NewReader(f, pool)
	if err != nil {
		return err
	}
	defer r.Close()
	return Drain[T](r, fn)
}

// FromSlice writes vs into a fresh file on vol, charging the usual write
// I/Os. It is the standard way tests and examples materialise inputs.
func FromSlice[T any](vol *pdm.Volume, pool *pdm.Pool, codec record.Codec[T], vs []T) (*File[T], error) {
	f := NewFile[T](vol, codec)
	w, err := NewWriter(f, pool)
	if err != nil {
		return nil, err
	}
	for _, v := range vs {
		if err := w.Append(v); err != nil {
			w.Close()
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return f, nil
}

// ToSlice reads the whole file into memory, charging the usual read I/Os.
// Intended for tests and small outputs only.
func ToSlice[T any](f *File[T], pool *pdm.Pool) ([]T, error) {
	out := make([]T, 0, f.Len())
	err := ForEach(f, pool, func(v T) error {
		out = append(out, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReadRecordAt fetches record index i of f with a single block read, using
// one temporary frame. It is deliberately expensive — one I/O per record —
// and exists to implement the survey's naive baselines faithfully.
func ReadRecordAt[T any](f *File[T], pool *pdm.Pool, i int64) (T, error) {
	var zero T
	if i < 0 || i >= f.n {
		return zero, fmt.Errorf("stream: record index %d out of range [0,%d)", i, f.n)
	}
	fr, err := pool.Alloc()
	if err != nil {
		return zero, err
	}
	defer fr.Release()
	per := int64(f.PerBlock())
	if err := f.vol.ReadBlock(f.blocks[i/per], fr.Buf); err != nil {
		return zero, err
	}
	off := int(i%per) * f.codec.Size()
	return f.codec.Decode(fr.Buf[off:]), nil
}

// WriteRecordAt overwrites record index i of f via read-modify-write of its
// block (one read plus one write), again modelling the naive random-access
// cost. The file must already contain index i.
func WriteRecordAt[T any](f *File[T], pool *pdm.Pool, i int64, v T) error {
	if i < 0 || i >= f.n {
		return fmt.Errorf("stream: record index %d out of range [0,%d)", i, f.n)
	}
	fr, err := pool.Alloc()
	if err != nil {
		return err
	}
	defer fr.Release()
	per := int64(f.PerBlock())
	addr := f.blocks[i/per]
	if err := f.vol.ReadBlock(addr, fr.Buf); err != nil {
		return err
	}
	off := int(i%per) * f.codec.Size()
	f.codec.Encode(fr.Buf[off:], v)
	return f.vol.WriteBlock(addr, fr.Buf)
}

// AppendFileLen grows f's logical length to include records written directly
// via block addresses by lower-level code. Most callers never need this.
func AppendFileLen[T any](f *File[T], addrs []int64, n int64) {
	f.blocks = append(f.blocks, addrs...)
	f.n += n
}

// BlockAddrs exposes the file's block address list for algorithms (such as
// the naive permuter and the matrix routines) that address blocks directly.
func BlockAddrs[T any](f *File[T]) []int64 { return f.blocks }
