package stream

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"em/internal/pdm"
	"em/internal/record"
)

func newEnv(t *testing.T, memBlocks, disks int) (*pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: memBlocks, Disks: disks})
	return vol, pdm.PoolFor(vol)
}

func recs(n int) []record.Record {
	rng := rand.New(rand.NewSource(42))
	out := make([]record.Record, n)
	for i := range out {
		out[i] = record.Record{Key: rng.Uint64(), Val: uint64(i)}
	}
	return out
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 5, 64, 257} {
		vol, pool := newEnv(t, 8, 1)
		in := recs(n)
		f, err := FromSlice(vol, pool, record.RecordCodec{}, in)
		if err != nil {
			t.Fatal(err)
		}
		if f.Len() != int64(n) {
			t.Fatalf("n=%d: Len=%d", n, f.Len())
		}
		out, err := ToSlice(f, pool)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != n {
			t.Fatalf("n=%d: got %d records back", n, len(out))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("n=%d: record %d mismatch", n, i)
			}
		}
		if pool.InUse() != 0 {
			t.Fatalf("n=%d: leaked %d frames", n, pool.InUse())
		}
	}
}

func TestPerBlock(t *testing.T) {
	vol, _ := newEnv(t, 8, 1)
	f := NewFile[record.Record](vol, record.RecordCodec{})
	if got := f.PerBlock(); got != 4 { // 64-byte blocks / 16-byte records
		t.Fatalf("PerBlock = %d, want 4", got)
	}
}

func TestScanIOCount(t *testing.T) {
	vol, pool := newEnv(t, 8, 1)
	n := 100 // 25 blocks at 4 records per block
	f, err := FromSlice(vol, pool, record.RecordCodec{}, recs(n))
	if err != nil {
		t.Fatal(err)
	}
	if f.Blocks() != 25 {
		t.Fatalf("blocks = %d, want 25", f.Blocks())
	}
	vol.Stats().Reset()
	if _, err := ToSlice(f, pool); err != nil {
		t.Fatal(err)
	}
	if got := vol.Stats().Reads; got != 25 {
		t.Fatalf("scan of 25 blocks cost %d reads", got)
	}
	if vol.Stats().Writes != 0 {
		t.Fatal("scan should not write")
	}
}

func TestStripedWriterParallelSteps(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 16, Disks: 4})
	pool := pdm.PoolFor(vol)
	f := NewFile[record.Record](vol, record.RecordCodec{})
	w, err := NewStripedWriter(f, pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs(64) { // 16 blocks = 4 striped batches
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s := vol.Stats()
	if s.Writes != 16 {
		t.Fatalf("writes = %d, want 16", s.Writes)
	}
	if s.Steps != 4 {
		t.Fatalf("steps = %d, want 4 (width-4 striping on 4 disks)", s.Steps)
	}
	// Striped read back.
	s.Reset()
	r, err := NewStripedReader(f, pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	count := 0
	for {
		_, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 64 {
		t.Fatalf("read %d records", count)
	}
	if s.Steps != 4 {
		t.Fatalf("read steps = %d, want 4", s.Steps)
	}
}

func TestReaderPeek(t *testing.T) {
	vol, pool := newEnv(t, 8, 1)
	in := recs(10)
	f, err := FromSlice(vol, pool, record.RecordCodec{}, in)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(f, pool)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p1, ok, err := r.Peek()
	if err != nil || !ok {
		t.Fatalf("peek: %v %v", ok, err)
	}
	p2, _, _ := r.Peek()
	if p1 != p2 {
		t.Fatal("peek must not consume")
	}
	n1, _, _ := r.Next()
	if n1 != p1 {
		t.Fatal("next after peek mismatch")
	}
	if r.Remaining() != 9 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestClosedReaderWriter(t *testing.T) {
	vol, pool := newEnv(t, 8, 1)
	f, err := FromSlice(vol, pool, record.RecordCodec{}, recs(4))
	if err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(f, pool)
	r.Close()
	r.Close() // idempotent
	if _, _, err := r.Next(); !errors.Is(err, ErrClosed) {
		t.Fatalf("next after close: %v", err)
	}
	w, _ := NewWriter(f, pool)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(record.Record{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

func TestRandomAccess(t *testing.T) {
	vol, pool := newEnv(t, 8, 1)
	in := recs(30)
	f, err := FromSlice(vol, pool, record.RecordCodec{}, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecordAt(f, pool, 17)
	if err != nil {
		t.Fatal(err)
	}
	if got != in[17] {
		t.Fatal("ReadRecordAt mismatch")
	}
	repl := record.Record{Key: 999, Val: 999}
	if err := WriteRecordAt(f, pool, 17, repl); err != nil {
		t.Fatal(err)
	}
	got, err = ReadRecordAt(f, pool, 17)
	if err != nil {
		t.Fatal(err)
	}
	if got != repl {
		t.Fatal("WriteRecordAt did not stick")
	}
	// Neighbours untouched.
	for _, i := range []int64{16, 18} {
		g, err := ReadRecordAt(f, pool, i)
		if err != nil {
			t.Fatal(err)
		}
		if g != in[i] {
			t.Fatalf("neighbour %d corrupted", i)
		}
	}
	if _, err := ReadRecordAt(f, pool, 30); err == nil {
		t.Fatal("out-of-range read should fail")
	}
	if err := WriteRecordAt(f, pool, -1, repl); err == nil {
		t.Fatal("out-of-range write should fail")
	}
}

func TestRandomAccessIOCost(t *testing.T) {
	vol, pool := newEnv(t, 8, 1)
	f, err := FromSlice(vol, pool, record.RecordCodec{}, recs(40))
	if err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	if _, err := ReadRecordAt(f, pool, 5); err != nil {
		t.Fatal(err)
	}
	if vol.Stats().Total() != 1 {
		t.Fatalf("random read cost %d I/Os, want 1", vol.Stats().Total())
	}
	vol.Stats().Reset()
	if err := WriteRecordAt(f, pool, 5, record.Record{}); err != nil {
		t.Fatal(err)
	}
	if vol.Stats().Reads != 1 || vol.Stats().Writes != 1 {
		t.Fatalf("random write cost %v, want 1 read + 1 write", vol.Stats())
	}
}

func TestFileRelease(t *testing.T) {
	vol, pool := newEnv(t, 8, 1)
	f, err := FromSlice(vol, pool, record.RecordCodec{}, recs(8))
	if err != nil {
		t.Fatal(err)
	}
	if f.Blocks() == 0 {
		t.Fatal("expected blocks")
	}
	before := vol.Allocated()
	f.Release()
	if f.Len() != 0 || f.Blocks() != 0 {
		t.Fatal("release did not empty file")
	}
	// Freed blocks are reused by subsequent single-block allocations.
	if vol.Alloc(1) >= before {
		t.Fatal("freed block not reused")
	}
}

func TestWidthValidation(t *testing.T) {
	vol, pool := newEnv(t, 8, 1)
	f := NewFile[record.Record](vol, record.RecordCodec{})
	if _, err := NewStripedWriter(f, pool, 0); err == nil {
		t.Fatal("width 0 writer should fail")
	}
	if _, err := NewStripedReader(f, pool, -1); err == nil {
		t.Fatal("negative width reader should fail")
	}
}

func TestWriterRespectsPoolBudget(t *testing.T) {
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 2, Disks: 1})
	pool := pdm.PoolFor(vol)
	f := NewFile[record.Record](vol, record.RecordCodec{})
	if _, err := NewStripedWriter(f, pool, 3); !errors.Is(err, pdm.ErrNoFrames) {
		t.Fatalf("3-frame writer on 2-frame pool: %v", err)
	}
	if pool.InUse() != 0 {
		t.Fatal("failed construction leaked frames")
	}
}

// Property: FromSlice then ToSlice is the identity on arbitrary uint64 data.
func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) > 500 {
			vals = vals[:500]
		}
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 64, MemBlocks: 8, Disks: 2})
		pool := pdm.PoolFor(vol)
		file, err := FromSlice(vol, pool, record.U64Codec{}, vals)
		if err != nil {
			return false
		}
		out, err := ToSlice(file, pool)
		if err != nil {
			return false
		}
		if len(out) != len(vals) {
			return false
		}
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
