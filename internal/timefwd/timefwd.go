// Package timefwd implements time-forward processing, the survey's
// flagship application of external priority queues: evaluating a DAG
// (circuit) whose description lives on disk.
//
// Vertices are numbered in topological order; each vertex v computes a
// value from the values of its in-neighbours. Visiting vertices in order
// and fetching predecessor values directly would cost one random I/O per
// edge, Θ(E). Time-forward processing instead *sends* each computed value
// forward in time through an external priority queue keyed by the receiving
// vertex: when the scan reaches v, every incoming value is sitting at the
// front of the queue. Total cost: O(Sort(E)) I/Os.
package timefwd

import (
	"errors"
	"fmt"
	"sort"

	"em/internal/extsort"
	"em/internal/pdm"
	"em/internal/pqueue"
	"em/internal/record"
	"em/internal/stream"
)

// ErrNotTopological reports an edge (u, v) with u >= v: vertex ids must be
// a topological numbering.
var ErrNotTopological = errors.New("timefwd: edge violates topological numbering")

// Combine computes vertex v's value from its in-neighbours' values, given
// in ascending order. A source vertex receives an empty slice.
type Combine func(v int64, inputs []int64) int64

// Eval evaluates a DAG on vertices 0..v-1 described by (u, w) arc pairs
// with u < w, using time-forward processing: O(Sort(E)) I/Os. It returns
// (vertex, value) pairs sorted by vertex.
func Eval(vol *pdm.Volume, pool *pdm.Pool, v int64, arcs *stream.File[record.Pair], fn Combine) (*stream.File[record.Pair], error) {
	// Arcs sorted by source align with the vertex scan.
	sorted, err := extsort.MergeSort(arcs, pool, func(a, b record.Pair) bool {
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	}, nil)
	if err != nil {
		return nil, err
	}

	// Open the scan's writer and reader before creating the queue: the
	// queue budgets its in-memory heap and run count from the frames still
	// free at construction time.
	out := stream.NewFile[record.Pair](vol, record.PairCodec{})
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	ar, err := stream.NewReader(sorted, pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer ar.Close()

	q, err := pqueue.New(vol, pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer q.Close()

	arc, arcOK, err := ar.Next()
	if err != nil {
		w.Close()
		return nil, err
	}
	var inputs []int64
	for u := int64(0); u < v; u++ {
		// Drain every value sent to u. Keys are vertex ids, so the queue's
		// minimum is exactly the current vertex while such items exist.
		inputs = inputs[:0]
		for {
			k, val, ok, err := q.PopMin()
			if err != nil {
				w.Close()
				return nil, err
			}
			if !ok {
				break
			}
			if k != uint64(u) {
				// Value for a later vertex: push it back and stop draining.
				if err := q.Push(k, val); err != nil {
					w.Close()
					return nil, err
				}
				break
			}
			inputs = append(inputs, int64(val))
		}
		sort.Slice(inputs, func(i, j int) bool { return inputs[i] < inputs[j] })
		val := fn(u, inputs)
		if err := w.Append(record.Pair{A: u, B: val}); err != nil {
			w.Close()
			return nil, err
		}
		// Forward the value along every out-arc.
		for arcOK && arc.A == u {
			if arc.B <= u || arc.B >= v {
				w.Close()
				return nil, fmt.Errorf("%w: (%d, %d) with V=%d", ErrNotTopological, arc.A, arc.B, v)
			}
			if err := q.Push(uint64(arc.B), uint64(val)); err != nil {
				w.Close()
				return nil, err
			}
			arc, arcOK, err = ar.Next()
			if err != nil {
				w.Close()
				return nil, err
			}
		}
		if arcOK && arc.A < u {
			w.Close()
			return nil, fmt.Errorf("%w: arc from %d after vertex %d", ErrNotTopological, arc.A, u)
		}
	}
	if arcOK {
		w.Close()
		return nil, fmt.Errorf("%w: arc from %d beyond last vertex", ErrNotTopological, arc.A)
	}
	sorted.Release()
	return out, w.Close()
}

// EvalNaive is the baseline: values are kept in a disk array and every arc
// triggers a random read of its source's value — Θ(E) I/Os plus the scan.
func EvalNaive(vol *pdm.Volume, pool *pdm.Pool, v int64, arcs *stream.File[record.Pair], fn Combine) (*stream.File[record.Pair], error) {
	// Incoming arcs sorted by destination align with the vertex scan.
	sorted, err := extsort.MergeSort(arcs, pool, func(a, b record.Pair) bool {
		if a.B != b.B {
			return a.B < b.B
		}
		return a.A < b.A
	}, nil)
	if err != nil {
		return nil, err
	}
	out := stream.NewFile[record.Pair](vol, record.PairCodec{})
	w, err := stream.NewWriter(out, pool)
	if err != nil {
		return nil, err
	}
	// Pre-size the value array with zeros so WriteRecordAt can address it.
	vals := stream.NewFile[record.Pair](vol, record.PairCodec{})
	vw, err := stream.NewWriter(vals, pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	for i := int64(0); i < v; i++ {
		if err := vw.Append(record.Pair{A: i, B: 0}); err != nil {
			vw.Close()
			w.Close()
			return nil, err
		}
	}
	if err := vw.Close(); err != nil {
		w.Close()
		return nil, err
	}

	ar, err := stream.NewReader(sorted, pool)
	if err != nil {
		w.Close()
		return nil, err
	}
	defer ar.Close()
	arc, arcOK, err := ar.Next()
	if err != nil {
		w.Close()
		return nil, err
	}
	var inputs []int64
	for u := int64(0); u < v; u++ {
		inputs = inputs[:0]
		for arcOK && arc.B == u {
			if arc.A >= u {
				w.Close()
				return nil, fmt.Errorf("%w: (%d, %d)", ErrNotTopological, arc.A, arc.B)
			}
			// One random block read per arc: the Θ(E) term.
			src, err := stream.ReadRecordAt(vals, pool, arc.A)
			if err != nil {
				w.Close()
				return nil, err
			}
			inputs = append(inputs, src.B)
			arc, arcOK, err = ar.Next()
			if err != nil {
				w.Close()
				return nil, err
			}
		}
		sort.Slice(inputs, func(i, j int) bool { return inputs[i] < inputs[j] })
		val := fn(u, inputs)
		if err := stream.WriteRecordAt(vals, pool, u, record.Pair{A: u, B: val}); err != nil {
			w.Close()
			return nil, err
		}
		if err := w.Append(record.Pair{A: u, B: val}); err != nil {
			w.Close()
			return nil, err
		}
	}
	sorted.Release()
	vals.Release()
	return out, w.Close()
}
