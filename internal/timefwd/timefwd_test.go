package timefwd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"em/internal/pdm"
	"em/internal/record"
	"em/internal/stream"
)

func newEnv(t testing.TB) (*pdm.Volume, *pdm.Pool) {
	t.Helper()
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 12, Disks: 1})
	return vol, pdm.PoolFor(vol)
}

// sumCombine is the canonical test circuit: value(v) = v + Σ inputs.
func sumCombine(v int64, inputs []int64) int64 {
	s := v
	for _, x := range inputs {
		s += x
	}
	return s
}

// refEval evaluates the DAG in memory.
func refEval(v int64, arcs [][2]int64, fn Combine) []int64 {
	in := make(map[int64][]int64)
	for _, a := range arcs {
		in[a[1]] = append(in[a[1]], a[0])
	}
	vals := make([]int64, v)
	for u := int64(0); u < v; u++ {
		var inputs []int64
		for _, src := range in[u] {
			inputs = append(inputs, vals[src])
		}
		// Mirror Eval's determinism: inputs ascending by value.
		for i := 1; i < len(inputs); i++ {
			for j := i; j > 0 && inputs[j-1] > inputs[j]; j-- {
				inputs[j-1], inputs[j] = inputs[j], inputs[j-1]
			}
		}
		vals[u] = fn(u, inputs)
	}
	return vals
}

func arcFile(t testing.TB, vol *pdm.Volume, pool *pdm.Pool, arcs [][2]int64) *stream.File[record.Pair] {
	t.Helper()
	pairs := make([]record.Pair, len(arcs))
	for i, a := range arcs {
		pairs[i] = record.Pair{A: a[0], B: a[1]}
	}
	f, err := stream.FromSlice(vol, pool, record.PairCodec{}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// randomDAG draws arcs (u, w) with u < w, deduplicated. e is capped at the
// number of distinct forward arcs so generation always terminates.
func randomDAG(rng *rand.Rand, v, e int) [][2]int64 {
	if max := v * (v - 1) / 2; e > max {
		e = max
	}
	seen := map[[2]int64]bool{}
	var arcs [][2]int64
	for len(arcs) < e {
		u := rng.Int63n(int64(v - 1))
		w := u + 1 + rng.Int63n(int64(v)-u-1)
		a := [2]int64{u, w}
		if !seen[a] {
			seen[a] = true
			arcs = append(arcs, a)
		}
	}
	return arcs
}

func checkDAG(t *testing.T, v int64, arcs [][2]int64) {
	t.Helper()
	vol, pool := newEnv(t)
	af := arcFile(t, vol, pool, arcs)
	out, err := Eval(vol, pool, v, af, sumCombine)
	if err != nil {
		t.Fatal(err)
	}
	got, err := stream.ToSlice(out, pool)
	if err != nil {
		t.Fatal(err)
	}
	want := refEval(v, arcs, sumCombine)
	if int64(len(got)) != v {
		t.Fatalf("evaluated %d of %d vertices", len(got), v)
	}
	for _, p := range got {
		if want[p.A] != p.B {
			t.Fatalf("value(%d) = %d, want %d", p.A, p.B, want[p.A])
		}
	}
	if pool.InUse() != 0 {
		t.Fatalf("leaked %d frames", pool.InUse())
	}
}

func TestChain(t *testing.T) {
	// 0 -> 1 -> 2 -> 3: running prefix sums of ids.
	checkDAG(t, 4, [][2]int64{{0, 1}, {1, 2}, {2, 3}})
}

func TestDiamond(t *testing.T) {
	checkDAG(t, 4, [][2]int64{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
}

func TestNoEdges(t *testing.T) {
	checkDAG(t, 5, nil)
}

func TestFanInHeavy(t *testing.T) {
	// Everything feeds the last vertex.
	var arcs [][2]int64
	for u := int64(0); u < 99; u++ {
		arcs = append(arcs, [2]int64{u, 99})
	}
	checkDAG(t, 100, arcs)
}

func TestRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 5; trial++ {
		v := 50 + rng.Intn(300)
		e := v + rng.Intn(3*v)
		checkDAG(t, int64(v), randomDAG(rng, v, e))
	}
}

func TestNaiveMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	v := 200
	arcs := randomDAG(rng, v, 600)
	vol, pool := newEnv(t)
	af := arcFile(t, vol, pool, arcs)
	a, err := Eval(vol, pool, int64(v), af, sumCombine)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvalNaive(vol, pool, int64(v), af, sumCombine)
	if err != nil {
		t.Fatal(err)
	}
	as, _ := stream.ToSlice(a, pool)
	bs, _ := stream.ToSlice(b, pool)
	if len(as) != len(bs) {
		t.Fatalf("lengths differ: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("disagree at %d: %+v vs %+v", i, as[i], bs[i])
		}
	}
}

func TestRejectsNonTopological(t *testing.T) {
	vol, pool := newEnv(t)
	cases := [][][2]int64{
		{{2, 1}},  // backward
		{{1, 1}},  // self loop
		{{0, 99}}, // out of range
	}
	for _, arcs := range cases {
		af := arcFile(t, vol, pool, arcs)
		if _, err := Eval(vol, pool, 3, af, sumCombine); err == nil {
			t.Errorf("arcs %v accepted", arcs)
		}
	}
}

func TestTimeForwardBeatsNaiveOnIOs(t *testing.T) {
	// The survey's claim: O(Sort(E)) ≪ Θ(E) for large blocks.
	vol := pdm.MustVolume(pdm.Config{BlockBytes: 4096, MemBlocks: 16, Disks: 1})
	pool := pdm.PoolFor(vol)
	rng := rand.New(rand.NewSource(29))
	v := 5000
	arcs := randomDAG(rng, v, 4*v)
	af := arcFile(t, vol, pool, arcs)

	vol.Stats().Reset()
	if _, err := Eval(vol, pool, int64(v), af, sumCombine); err != nil {
		t.Fatal(err)
	}
	tf := vol.Stats().Total()

	vol.Stats().Reset()
	if _, err := EvalNaive(vol, pool, int64(v), af, sumCombine); err != nil {
		t.Fatal(err)
	}
	naive := vol.Stats().Total()

	if tf*2 > naive {
		t.Fatalf("time-forward %d I/Os vs naive %d: expected ≥2x advantage", tf, naive)
	}
	t.Logf("time-forward=%d naive=%d (%.1fx)", tf, naive, float64(naive)/float64(tf))
}

// Property: arbitrary DAGs evaluate to the reference values under a
// max-combine circuit (order-insensitive, overflow-free).
func TestQuickMaxCircuit(t *testing.T) {
	maxCombine := func(v int64, inputs []int64) int64 {
		m := v
		for _, x := range inputs {
			if x > m {
				m = x
			}
		}
		return m
	}
	f := func(seed int64, vRaw, eRaw uint8) bool {
		v := int(vRaw)%100 + 2
		e := int(eRaw) % (2 * v)
		rng := rand.New(rand.NewSource(seed))
		arcs := randomDAG(rng, v, e)
		vol := pdm.MustVolume(pdm.Config{BlockBytes: 256, MemBlocks: 12, Disks: 1})
		pool := pdm.PoolFor(vol)
		af := arcFile(t, vol, pool, arcs)
		out, err := Eval(vol, pool, int64(v), af, maxCombine)
		if err != nil {
			return false
		}
		got, err := stream.ToSlice(out, pool)
		if err != nil {
			return false
		}
		want := refEval(int64(v), arcs, maxCombine)
		for _, p := range got {
			if want[p.A] != p.B {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
