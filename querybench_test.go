package em

// querybench_test.go benchmarks the query-serving read path added with the
// batched/prefetched B-tree subsystem: BenchmarkGetBatch pits a batch of
// point lookups against a loop of Gets, BenchmarkRangeScan the forecasting
// leaf-chain scanner against the synchronous Range. Both run on a
// worker-engine volume with a fixed per-block latency so the wall clock
// reflects the model's parallel-step cost; counted reads are reported
// alongside, where the batch's dedup saving is directly visible.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// benchTree builds a bulk-loaded tree over keys 1..n with warm internal
// levels on a fresh latency volume.
func benchTree(b *testing.B, n, disks int, latency time.Duration) (*Volume, *Pool, *BTree) {
	b.Helper()
	vol := MustVolume(Config{BlockBytes: 1024, MemBlocks: 96, Disks: disks, DiskLatency: latency})
	pool := PoolFor(vol)
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Key: uint64(i + 1), Val: uint64(i)}
	}
	f, err := FromSlice(vol, pool, RecordCodec{}, recs)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := BulkLoadBTreeWith(vol, pool, 16, f, &BulkLoadOptions{Width: disks, Async: true, WriteBehind: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.Warm(); err != nil {
		b.Fatal(err)
	}
	return vol, pool, tr
}

// BenchmarkGetBatch measures a 512-key point batch served one Get at a time
// vs through GetBatch, which sorts, dedupes shared internals, and fans the
// leaf reads across the disks.
func BenchmarkGetBatch(b *testing.B) {
	const (
		n       = 1 << 12
		q       = 512
		latency = 500 * time.Microsecond
	)
	for _, batched := range []bool{false, true} {
		b.Run(fmt.Sprintf("batched=%v", batched), func(b *testing.B) {
			vol, _, tr := benchTree(b, n, 4, latency)
			defer vol.Close()
			defer tr.Close()
			rng := rand.New(rand.NewSource(12))
			keys := make([]uint64, q)
			for i := range keys {
				keys[i] = uint64(rng.Intn(n+n/8) + 1)
			}
			vol.Stats().Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if batched {
					if _, _, err := tr.GetBatch(keys); err != nil {
						b.Fatal(err)
					}
					continue
				}
				for _, k := range keys {
					if _, _, err := tr.Get(k); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			s := vol.Stats().Snapshot()
			b.ReportMetric(float64(s.Reads)/float64(b.N), "blockreads/op")
			b.ReportMetric(float64(s.Steps)/float64(b.N), "iosteps/op")
		})
	}
}

// BenchmarkRangeScan measures a full-tree scan through the synchronous
// Range vs the prefetched Scanner keeping D leaf reads in flight; counted
// reads are identical, the clock divides by ≈D.
func BenchmarkRangeScan(b *testing.B) {
	const (
		n       = 1 << 12
		latency = 500 * time.Microsecond
	)
	for _, prefetch := range []bool{false, true} {
		b.Run(fmt.Sprintf("prefetch=%v", prefetch), func(b *testing.B) {
			vol, pool, tr := benchTree(b, n, 4, latency)
			defer vol.Close()
			defer tr.Close()
			vol.Stats().Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cnt := 0
				fn := func(k, v uint64) error { cnt++; return nil }
				var err error
				if prefetch {
					err = tr.RangePrefetch(pool, 0, ^uint64(0), nil, fn)
				} else {
					err = tr.Range(0, ^uint64(0), fn)
				}
				if err != nil {
					b.Fatal(err)
				}
				if cnt != n {
					b.Fatalf("scan returned %d of %d records", cnt, n)
				}
			}
			b.StopTimer()
			s := vol.Stats().Snapshot()
			b.ReportMetric(float64(s.Reads)/float64(b.N), "blockreads/op")
			b.ReportMetric(float64(s.Steps)/float64(b.N), "iosteps/op")
		})
	}
}
