package em_test

// Robustness contracts at the public surface: starved-pool errors are
// uniform across every layer, and a fault that aborts an operation midway
// unwinds both resources the model accounts for — pool frames and volume
// blocks — exactly. See the "Robustness" section of the package doc and
// CONTRIBUTING.md ("Writing fault-plan tests") for the conventions these
// tests pin down.

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"em"
)

func recLess(a, b em.Record) bool { return a.Key < b.Key }

// soakPool allocates every free frame so the next allocation anywhere
// sees genuine starvation; the returned func hands the frames back.
func soakPool(t *testing.T, pool *em.Pool) func() {
	t.Helper()
	frames, err := pool.AllocN(pool.Free())
	if err != nil {
		t.Fatalf("soaking the pool: %v", err)
	}
	return func() {
		for _, f := range frames {
			f.Release()
		}
	}
}

// buildSmallTree creates a tree over vol/pool holding keys [1, n] with
// val = 3*key, via point inserts (so admission options can be set).
func buildSmallTree(t *testing.T, vol *em.Volume, pool *em.Pool, n int, opts *em.BTreeOptions) *em.BTree {
	t.Helper()
	tr, err := em.NewBTreeWith(vol, pool, opts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= uint64(n); k++ {
		if _, err := tr.Insert(k, 3*k); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// buildSmallStore opens a store over vol/pool, inserts keys [1, n] with
// val = 3*key, and drains so a generation exists to serve from.
func buildSmallStore(t *testing.T, vol *em.Volume, pool *em.Pool, cfg em.StoreConfig) *em.Store {
	t.Helper()
	st, err := em.OpenStore(vol, pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 200; k++ {
		if err := st.Insert(k, 3*k); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStarvedPoolErrorsUniform is the starvation contract, table-driven
// over the allocating entry points of every layer: whatever wrapping a
// layer adds, errors.Is(err, em.ErrNoFrames) must hold, so one check
// works whether starvation surfaced in a sort, a scanner open, a session
// open, an admission shed, or a sharded fan-out. (Batched lookups are
// absent deliberately: GetBatch runs on the cache budget reserved at
// open, so pool starvation cannot reach it.) Gated variants must
// additionally match em.ErrOverload.
func TestStarvedPoolErrorsUniform(t *testing.T) {
	cfg := em.Config{BlockBytes: 512, MemBlocks: 48, Disks: 2}
	gated := &em.BTreeOptions{CacheFrames: 8, AdmitQueue: 2, AdmitWait: 2 * time.Millisecond}

	cases := []struct {
		name         string
		wantOverload bool
		run          func(t *testing.T) error
	}{
		{name: "merge-sort", run: func(t *testing.T) error {
			vol := em.MustVolume(cfg)
			f, err := em.FromSlice(vol, em.PoolFor(vol), em.RecordCodec{},
				randomRecords(rand.New(rand.NewSource(1)), 500))
			if err != nil {
				t.Fatal(err)
			}
			_, err = em.MergeSort(f, em.NewPool(512, 2), recLess, nil)
			return err
		}},
		{name: "distribution-sort", run: func(t *testing.T) error {
			vol := em.MustVolume(cfg)
			f, err := em.FromSlice(vol, em.PoolFor(vol), em.RecordCodec{},
				randomRecords(rand.New(rand.NewSource(2)), 500))
			if err != nil {
				t.Fatal(err)
			}
			_, err = em.DistributionSort(f, em.NewPool(512, 2), recLess, nil)
			return err
		}},
		{name: "sort-index", run: func(t *testing.T) error {
			vol := em.MustVolume(cfg)
			f, err := em.FromSlice(vol, em.PoolFor(vol), em.RecordCodec{},
				randomRecords(rand.New(rand.NewSource(3)), 500))
			if err != nil {
				t.Fatal(err)
			}
			_, err = em.SortIndex(f, em.NewPool(512, 2), nil)
			return err
		}},
		{name: "btree-scan", run: func(t *testing.T) error {
			vol := em.MustVolume(cfg)
			pool := em.PoolFor(vol)
			tr := buildSmallTree(t, vol, pool, 200, &em.BTreeOptions{CacheFrames: 8})
			defer soakPool(t, pool)()
			_, err := tr.Scan(1, 200)
			return err
		}},
		{name: "btree-session", run: func(t *testing.T) error {
			vol := em.MustVolume(cfg)
			pool := em.PoolFor(vol)
			tr := buildSmallTree(t, vol, pool, 200, &em.BTreeOptions{CacheFrames: 8})
			defer soakPool(t, pool)()
			_, err := tr.NewSession(8, 2)
			return err
		}},
		{name: "btree-scan-gated", wantOverload: true, run: func(t *testing.T) error {
			vol := em.MustVolume(cfg)
			pool := em.PoolFor(vol)
			tr := buildSmallTree(t, vol, pool, 200, gated)
			defer soakPool(t, pool)()
			_, err := tr.Scan(1, 200)
			return err
		}},
		{name: "store-scan", run: func(t *testing.T) error {
			vol := em.MustVolume(cfg)
			pool := em.PoolFor(vol)
			st := buildSmallStore(t, vol, pool, em.StoreConfig{FrontOps: 1 << 20, CacheFrames: 4, Width: 2})
			defer st.Close()
			defer soakPool(t, pool)()
			_, err := st.Scan(1, 200)
			return err
		}},
		{name: "store-session", run: func(t *testing.T) error {
			vol := em.MustVolume(cfg)
			pool := em.PoolFor(vol)
			st := buildSmallStore(t, vol, pool, em.StoreConfig{FrontOps: 1 << 20, CacheFrames: 4, Width: 2})
			defer st.Close()
			defer soakPool(t, pool)()
			_, err := st.NewSession(4, 2)
			return err
		}},
		{name: "store-session-gated", wantOverload: true, run: func(t *testing.T) error {
			vol := em.MustVolume(cfg)
			pool := em.PoolFor(vol)
			st := buildSmallStore(t, vol, pool, em.StoreConfig{
				FrontOps: 1 << 20, CacheFrames: 4, Width: 2,
				AdmitQueue: 2, AdmitWait: 2 * time.Millisecond})
			defer st.Close()
			defer soakPool(t, pool)()
			_, err := st.NewSession(4, 2)
			return err
		}},
		{name: "sharded-session", run: func(t *testing.T) error {
			vol0, vol1 := em.MustVolume(cfg), em.MustVolume(cfg)
			pool0, pool1 := em.PoolFor(vol0), em.PoolFor(vol1)
			t0 := buildSmallTree(t, vol0, pool0, 100, &em.BTreeOptions{CacheFrames: 8})
			t1 := buildSmallTree(t, vol1, pool1, 100, &em.BTreeOptions{CacheFrames: 8})
			sharded, err := em.NewShardedTree([]*em.BTree{t0, t1}, &em.ShardedTreeOptions{Splits: []uint64{101}})
			if err != nil {
				t.Fatal(err)
			}
			defer soakPool(t, pool1)() // starve only the upper shard
			_, err = sharded.NewSession(8, 2)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t)
			if err == nil {
				t.Fatal("starved pool accepted the request")
			}
			if !errors.Is(err, em.ErrNoFrames) {
				t.Fatalf("starvation error does not match em.ErrNoFrames: %v", err)
			}
			if tc.wantOverload != errors.Is(err, em.ErrOverload) {
				t.Fatalf("overload match = %v, want %v: %v",
					!tc.wantOverload, tc.wantOverload, err)
			}
		})
	}
}

// backendConfigs returns the sim- and file-backed variants of cfg; the
// fault-unwind tests below run on both, since the unwind discipline must
// not depend on the storage medium.
func backendConfigs(t *testing.T, cfg em.Config) map[string]em.Config {
	t.Helper()
	file := cfg
	file.Dir = t.TempDir()
	return map[string]em.Config{"sim": cfg, "file": file}
}

// liveBlocks is the model's block-leak detector: addresses allocated and
// not yet freed.
func liveBlocks(vol *em.Volume) int64 { return vol.Allocated() - vol.FreeBlocks() }

// TestSortIndexUnwindUnderFault crashes the volume midway through a
// sort→bulk-load pipeline and asserts the documented unwind contract: the
// pool is restored exactly and no blocks beyond the input file stay
// allocated, on both storage backends.
func TestSortIndexUnwindUnderFault(t *testing.T) {
	base := em.Config{BlockBytes: 512, MemBlocks: 48, Disks: 2}
	const n = 2500

	// Fault-free twin first (CONTRIBUTING.md): count the ops of input
	// creation and of the build itself, so the crash point can be pinned
	// to the middle of the build deterministically.
	dry := em.MustVolume(base)
	pool := em.PoolFor(dry)
	f, err := em.FromSlice(dry, pool, em.RecordCodec{}, randomRecords(rand.New(rand.NewSource(7)), n))
	if err != nil {
		t.Fatal(err)
	}
	s := dry.Stats().Snapshot()
	inputOps := int64(s.Reads + s.Writes)
	if _, err := em.SortIndex(f, pool, nil); err != nil {
		t.Fatal(err)
	}
	s = dry.Stats().Snapshot()
	buildOps := int64(s.Reads+s.Writes) - inputOps

	for name, cfg := range backendConfigs(t, base) {
		t.Run(name, func(t *testing.T) {
			cfg.Fault = &em.FaultPlan{Seed: 7, FailAfter: inputOps + buildOps/2}
			vol, err := em.NewVolume(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer vol.Close()
			pool := em.PoolFor(vol)
			f, err := em.FromSlice(vol, pool, em.RecordCodec{}, randomRecords(rand.New(rand.NewSource(7)), n))
			if err != nil {
				t.Fatal(err)
			}
			freeBefore, liveBefore := pool.Free(), liveBlocks(vol)
			_, err = em.SortIndex(f, pool, nil)
			if err == nil {
				t.Fatal("SortIndex survived a mid-build crash")
			}
			if !errors.Is(err, em.ErrFaulted) {
				t.Fatalf("crash error does not match em.ErrFaulted: %v", err)
			}
			if got := pool.Free(); got != freeBefore {
				t.Errorf("pool not restored: free %d, want %d", got, freeBefore)
			}
			if got := liveBlocks(vol); got != liveBefore {
				t.Errorf("blocks leaked: live %d, want %d", got, liveBefore)
			}
			if !vol.Fault().Crashed() {
				t.Error("fault plan never reached its crash point")
			}
		})
	}
}

// TestStoreDrainUnwindUnderFault crashes the volume midway through a
// store's front→generation handover. The failed drain must restore the
// serving pool exactly (the handover runs on its private budget), and a
// close through the dead volume — whatever error it reports — must still
// hand back every frame and every block.
func TestStoreDrainUnwindUnderFault(t *testing.T) {
	base := em.Config{BlockBytes: 512, MemBlocks: 64, Disks: 2}
	scfg := em.StoreConfig{FrontOps: 1 << 20, CacheFrames: 4, Width: 2}
	const n = 400

	load := func(vol *em.Volume, pool *em.Pool) *em.Store {
		t.Helper()
		st, err := em.OpenStore(vol, pool, scfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k <= n; k++ {
			if err := st.Insert(k, 3*k); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}

	// Fault-free twin: ops up to the drain, then through it.
	dry := em.MustVolume(base)
	st := load(dry, em.PoolFor(dry))
	s := dry.Stats().Snapshot()
	preOps := int64(s.Reads + s.Writes)
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	s = dry.Stats().Snapshot()
	drainOps := int64(s.Reads+s.Writes) - preOps
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	for name, cfg := range backendConfigs(t, base) {
		t.Run(name, func(t *testing.T) {
			cfg.Fault = &em.FaultPlan{Seed: 7, FailAfter: preOps + drainOps/2}
			vol, err := em.NewVolume(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer vol.Close()
			pool := em.PoolFor(vol)
			st := load(vol, pool)
			freeBefore := pool.Free()
			err = st.Drain()
			if err == nil {
				t.Fatal("Drain survived a mid-handover crash")
			}
			if !errors.Is(err, em.ErrFaulted) {
				t.Fatalf("crash error does not match em.ErrFaulted: %v", err)
			}
			if got := pool.Free(); got != freeBefore {
				t.Errorf("serving pool not restored: free %d, want %d", got, freeBefore)
			}
			// Reads must keep serving the pre-drain contents through the
			// surviving generation ⊕ front overlay.
			if v, ok, err := st.Get(uint64(n / 2)); err != nil || !ok || v != 3*uint64(n/2) {
				t.Errorf("read after failed drain: v=%d ok=%v err=%v", v, ok, err)
			}
			st.Close() // the volume is dead; the error may be anything,
			// but resources must come back regardless.
			if got := pool.InUse(); got != 0 {
				t.Errorf("close leaked %d frames", got)
			}
			if got := liveBlocks(vol); got != 0 {
				t.Errorf("close leaked %d blocks", got)
			}
		})
	}
}

// TestShardedGetBatchUnwindUnderFault kills one shard's volume at its
// first serving read and asserts graceful degradation end to end: the
// fan-out reports a typed em.PartialError naming the dead shard, the
// surviving shard's answers arrive, and neither shard's pool or volume is
// left holding anything it did not hold before the call.
func TestShardedGetBatchUnwindUnderFault(t *testing.T) {
	base := em.Config{BlockBytes: 512, MemBlocks: 48, Disks: 2}
	const perShard = 2000

	build := func(vol *em.Volume, lo uint64) *em.BTree {
		t.Helper()
		pool := em.PoolFor(vol)
		recs := make([]em.Record, perShard)
		for i := range recs {
			k := lo + uint64(i)
			recs[i] = em.Record{Key: k, Val: 3 * k}
		}
		f, err := em.FromSlice(vol, pool, em.RecordCodec{}, recs)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := em.BulkLoadBTree(vol, pool, 8, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Warm(); err != nil {
			t.Fatal(err)
		}
		return tr
	}

	// Fault-free twin of the upper shard pins the crash to the first
	// serving read: FailAfter = every transfer the build needs.
	dry := em.MustVolume(base)
	build(dry, perShard+1)
	s := dry.Stats().Snapshot()
	buildOps := int64(s.Reads + s.Writes)

	for name, cfg := range backendConfigs(t, base) {
		t.Run(name, func(t *testing.T) {
			crashCfg := cfg
			crashCfg.Fault = &em.FaultPlan{Seed: 1, FailAfter: buildOps}
			if cfg.Dir != "" { // file volumes must not share a directory
				cfg.Dir = t.TempDir()
				crashCfg.Dir = t.TempDir()
			}
			vol0, err := em.NewVolume(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer vol0.Close()
			vol1, err := em.NewVolume(crashCfg)
			if err != nil {
				t.Fatal(err)
			}
			defer vol1.Close()
			t0, t1 := build(vol0, 1), build(vol1, perShard+1)
			sharded, err := em.NewShardedTree([]*em.BTree{t0, t1}, &em.ShardedTreeOptions{Splits: []uint64{perShard + 1}})
			if err != nil {
				t.Fatal(err)
			}
			pool0, pool1 := em.PoolFor(vol0), em.PoolFor(vol1)
			free0, free1 := pool0.Free(), pool1.Free()
			live0, live1 := liveBlocks(vol0), liveBlocks(vol1)

			keys := make([]uint64, 0, 32)
			for i := 0; i < 16; i++ { // evenly spread, half per shard
				keys = append(keys, uint64(1+i*perShard/16))
				keys = append(keys, uint64(perShard+1+i*perShard/16))
			}
			vals, found, err := sharded.GetBatch(keys)
			if err == nil {
				t.Fatal("fan-out over a dead shard reported success")
			}
			var pe *em.PartialError
			if !errors.As(err, &pe) {
				t.Fatalf("want an em.PartialError, got %v", err)
			}
			if !errors.Is(err, em.ErrFaulted) {
				t.Fatalf("partial error does not expose the crash cause: %v", err)
			}
			if got := len(pe.Failed); got != 1 || pe.Failed[0] != 1 {
				t.Fatalf("failed shards %v, want [1]", pe.Failed)
			}
			served := 0
			for i, k := range keys {
				if !pe.Served[i] {
					continue
				}
				served++
				if !found[i] || vals[i] != 3*k {
					t.Errorf("served key %d: val %d found %v", k, vals[i], found[i])
				}
			}
			if served != len(keys)/2 {
				t.Errorf("served %d keys, want the surviving shard's %d", served, len(keys)/2)
			}
			if got := pool0.Free(); got != free0 {
				t.Errorf("surviving shard's pool not restored: free %d, want %d", got, free0)
			}
			if got := pool1.Free(); got != free1 {
				t.Errorf("dead shard's pool not restored: free %d, want %d", got, free1)
			}
			if got := liveBlocks(vol0); got != live0 {
				t.Errorf("surviving shard leaked blocks: live %d, want %d", got, live0)
			}
			if got := liveBlocks(vol1); got != live1 {
				t.Errorf("dead shard leaked blocks: live %d, want %d", got, live1)
			}
		})
	}
}
