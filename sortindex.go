package em

import (
	"em/internal/pipeline"
)

// SortIndexOptions tunes SortIndex, the sort→bulk-load index builder.
//
// Width and Async apply to both stages (the sort's readers and writers and
// the loader's input and leaf batches); WriteBehind batches the loader's
// leaf writes D at a time through the async engine. The loader's whole
// budget — CacheFrames for the buffer manager plus 4×Width stream frames
// (input double buffer and write-behind double buffer, reserved whether or
// not those modes are on) — is held back from the pool for the full
// duration of the call, so the sort makes identical splitting decisions in
// every mode combination at one width; size Config.MemBlocks to cover the
// sort's fan-out plus that reservation.
type SortIndexOptions = pipeline.Options

// SortIndex builds a B+-tree index over an unsorted record file: a
// distribution sort into key order followed by a bottom-up bulk load —
// Θ(Sort(N)) I/Os end to end, the survey's index-construction bound.
//
// With SortIndexOptions.Pipeline the two stages run concurrently: the
// sort's output writer announces each durable block group through a bounded
// pipe (smallest key ranges first, because the distribution recursion
// finishes its buckets in key order), and the loader reads those groups and
// packs leaves while later buckets are still being split. With WriteBehind
// the leaves leave through D-block batches on the async engine rather than
// one cache write-back at a time. Counted reads and writes are identical
// across all mode combinations at one width — the modes trade pool frames
// for wall-clock overlap, never transfers — a property the test suite pins
// down on both storage backends.
//
// Keys must be distinct: the tree is a map and the bulk loader rejects a
// non-strictly-increasing sorted stream with ErrUnsortedInput.
//
// The sorted intermediate file is released before returning; the returned
// tree's buffer manager draws CacheFrames frames from pool. On any error
// during the build the pool is restored exactly and no blocks are leaked;
// the one exception is a backend write failure while flushing the finished
// tree at the final rehoming step, where the error is returned and the
// already-written nodes stay on the volume.
func SortIndex(f *File[Record], pool *Pool, opts *SortIndexOptions) (*BTree, error) {
	return pipeline.SortIndex(f, pool, opts)
}
