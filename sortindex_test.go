package em

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

// sortIndexConfig is the device shape shared by the SortIndex tests: 16
// records per block, enough memory for the sort's fan-out beside the
// loader's reserved budget, four disks with a small service latency so the
// pipeline genuinely overlaps on the worker engine.
var sortIndexConfig = Config{BlockBytes: 256, MemBlocks: 64, Disks: 4, DiskLatency: 10 * time.Microsecond}

// permRecords produces n records with distinct shuffled keys.
func permRecords(seed int64, n int) []Record {
	rng := rand.New(rand.NewSource(seed))
	vs := make([]Record, n)
	for i, k := range rng.Perm(n) {
		vs[i] = Record{Key: uint64(k + 1), Val: uint64(i)}
	}
	return vs
}

// buildSortIndex runs SortIndex on a fresh volume and returns the tree's
// contents and the Stats the whole build (tree closed) charged.
func buildSortIndex(t *testing.T, dir string, vs []Record, opts *SortIndexOptions) ([][2]uint64, Stats) {
	t.Helper()
	cfg := sortIndexConfig
	cfg.Dir = dir
	vol, err := NewVolume(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer vol.Close()
	pool := PoolFor(vol)
	f, err := FromSlice(vol, pool, RecordCodec{}, vs)
	if err != nil {
		t.Fatal(err)
	}
	vol.Stats().Reset()
	tr, err := SortIndex(f, pool, opts)
	if err != nil {
		t.Fatalf("opts=%+v: %v", opts, err)
	}
	var kvs [][2]uint64
	if err := tr.Range(0, ^uint64(0), func(k, v uint64) error {
		kvs = append(kvs, [2]uint64{k, v})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("opts=%+v: leaked %d frames", opts, pool.InUse())
	}
	return kvs, vol.Stats().Snapshot()
}

// TestSortIndexPipelineMatchesSequential is the pipeline==sequential
// quick-check on both backends: for each stream mode, the pipelined build
// must produce the identical final tree at identical counted reads and
// writes — overlapping the loader with the sort moves wall-clock time, not
// transfers. Write-behind must not change the counts either.
func TestSortIndexPipelineMatchesSequential(t *testing.T) {
	n := 4000
	vs := permRecords(0x51D, n)
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			dir := ""
			if backend == "file" {
				dir = t.TempDir()
			}
			for _, async := range []bool{false, true} {
				// All four (WriteBehind, Pipeline) combinations of one
				// stream mode must agree on reads, writes, and contents.
				var refKVs [][2]uint64
				var refSt Stats
				for i, mode := range []*SortIndexOptions{
					{Width: 2, Async: async},
					{Width: 2, Async: async, WriteBehind: true},
					{Width: 2, Async: async, Pipeline: true},
					{Width: 2, Async: async, WriteBehind: true, Pipeline: true},
				} {
					kvs, st := buildSortIndex(t, dir, vs, mode)
					if len(kvs) != n {
						t.Fatalf("opts=%+v: tree has %d records, want %d", mode, len(kvs), n)
					}
					for j, kv := range kvs {
						if kv[0] != uint64(j+1) {
							t.Fatalf("opts=%+v: key %d out of place", mode, kv[0])
						}
					}
					if i == 0 {
						refKVs, refSt = kvs, st
						continue
					}
					for j := range kvs {
						if kvs[j] != refKVs[j] {
							t.Fatalf("opts=%+v: entry %d differs from sequential build", mode, j)
						}
					}
					if st.Reads != refSt.Reads || st.Writes != refSt.Writes {
						t.Fatalf("opts=%+v: counted I/Os diverge: got r=%d w=%d, sequential r=%d w=%d",
							mode, st.Reads, st.Writes, refSt.Reads, refSt.Writes)
					}
				}
			}
		})
	}
}

// TestSortIndexBackendsAgree pins the mem==file invariant for the pipeline:
// the same build on the file backend charges exactly the reads and writes
// the in-memory simulation counts.
func TestSortIndexBackendsAgree(t *testing.T) {
	vs := permRecords(0xBEEF, 3000)
	opts := &SortIndexOptions{Width: 4, Async: true, WriteBehind: true, Pipeline: true}
	memKVs, memSt := buildSortIndex(t, "", vs, opts)
	fileKVs, fileSt := buildSortIndex(t, t.TempDir(), vs, opts)
	if len(memKVs) != len(fileKVs) {
		t.Fatalf("tree sizes diverge: mem %d file %d", len(memKVs), len(fileKVs))
	}
	for i := range memKVs {
		if memKVs[i] != fileKVs[i] {
			t.Fatalf("entry %d differs across backends", i)
		}
	}
	if memSt.Reads != fileSt.Reads || memSt.Writes != fileSt.Writes {
		t.Fatalf("counted I/Os diverge: mem r=%d w=%d, file r=%d w=%d",
			memSt.Reads, fileSt.Reads, memSt.Writes, fileSt.Writes)
	}
}

// TestSortIndexDuplicateKeysRestoresPool injects the loader's rejection —
// duplicate keys surface as ErrUnsortedInput mid-build — into both modes
// and asserts the error unwinds the whole pipeline: the producer is
// unblocked and aborts, the pool is exactly restored, and no volume blocks
// are stranded.
func TestSortIndexDuplicateKeysRestoresPool(t *testing.T) {
	vs := permRecords(7, 4000)
	vs[1234].Key = vs[3210].Key
	for _, pipeline := range []bool{false, true} {
		vol, err := NewVolume(sortIndexConfig)
		if err != nil {
			t.Fatal(err)
		}
		pool := PoolFor(vol)
		f, err := FromSlice(vol, pool, RecordCodec{}, vs)
		if err != nil {
			t.Fatal(err)
		}
		preFree := pool.Free()
		preLive := vol.Allocated() - vol.FreeBlocks()
		tr, err := SortIndex(f, pool, &SortIndexOptions{Width: 2, Async: true, WriteBehind: true, Pipeline: pipeline})
		if err == nil {
			t.Fatalf("pipeline=%v: duplicate keys built a tree", pipeline)
		}
		if !errors.Is(err, ErrUnsortedInput) {
			t.Fatalf("pipeline=%v: error %v, want ErrUnsortedInput", pipeline, err)
		}
		if tr != nil {
			t.Fatalf("pipeline=%v: error return kept a tree", pipeline)
		}
		if pool.Free() != preFree || pool.InUse() != 0 {
			t.Fatalf("pipeline=%v: pool not restored: free %d (pre %d), in use %d",
				pipeline, pool.Free(), preFree, pool.InUse())
		}
		if live := vol.Allocated() - vol.FreeBlocks(); live != preLive {
			t.Fatalf("pipeline=%v: stranded %d volume blocks", pipeline, live-preLive)
		}
		vol.Close()
	}
}
